//! The simulated distributed store: placement, replication,
//! compression, chaos fault injection, bounded retry and accounting
//! over a set of [`Machine`]s.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use hgs_delta::CodecError;
use parking_lot::{Mutex, RwLock};

use crate::compress::{compress, decompress};
use crate::faults::{FaultPlan, FaultVerdict, CORRUPT_ON_READ_MARKER};
use crate::key::Table;
use crate::machine::{Machine, MachineDown, MachineStatsSnapshot};
use crate::retry::{Breaker, RetryPolicy};

/// Cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Number of storage machines (`m` in the paper).
    pub machines: usize,
    /// Replication factor (`r`): each chunk is written to `r`
    /// consecutive machines of the ring.
    pub replication: usize,
    /// Compress values with LZSS before storing (Fig. 13a).
    pub compress: bool,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            machines: 4,
            replication: 1,
            compress: false,
        }
    }
}

impl StoreConfig {
    pub fn new(machines: usize, replication: usize) -> StoreConfig {
        StoreConfig {
            machines,
            replication,
            compress: false,
        }
    }

    pub fn with_compression(mut self, on: bool) -> StoreConfig {
        self.compress = on;
        self
    }
}

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Every replica holding the requested chunk is **permanently**
    /// down ([`SimStore::fail_machine`]). Retrying cannot help until a
    /// machine heals, so the error surfaces without burning the retry
    /// budget.
    Unavailable { table: Table },
    /// Transient faults (outage windows, flakes — see
    /// [`crate::faults`]) survived every retry attempt on every
    /// replica. Distinct from [`StoreError::Unavailable`]: the replica
    /// set is alive, the operation may well succeed if re-issued
    /// later.
    Transient { attempts: u32, table: Table },
    /// Stored bytes failed to decompress.
    Corrupt(CodecError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Unavailable { table } => {
                write!(f, "all replicas down for a chunk of table {table}")
            }
            StoreError::Transient { attempts, table } => {
                write!(
                    f,
                    "transient faults exhausted {attempts} attempts for a chunk of table {table}"
                )
            }
            StoreError::Corrupt(e) => write!(f, "corrupt stored value: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Cluster-wide stats snapshot: one entry per machine.
pub type StoreStatsSnapshot = Vec<MachineStatsSnapshot>;

/// One row of a write batch: the same `(table, key, token, value)`
/// quadruple [`SimStore::put`] takes, as a value so whole batches can
/// be built up and shipped in per-machine round trips.
#[derive(Debug, Clone)]
pub struct PutRow {
    pub table: Table,
    pub key: Vec<u8>,
    pub token: u64,
    pub value: Bytes,
}

impl PutRow {
    pub fn new(table: Table, key: Vec<u8>, token: u64, value: Bytes) -> PutRow {
        PutRow {
            table,
            key,
            token,
            value,
        }
    }
}

/// Per-row accounting of one [`SimStore::put_batch`]: every row of the
/// batch lands in exactly one bucket, so
/// `replicated + partial + failed == rows.len()` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPutOutcome {
    /// Rows accepted by all `r` replicas.
    pub replicated: usize,
    /// Rows accepted by some but not all replicas (degraded
    /// durability; counted in [`SimStore::partial_put_count`]).
    pub partial: usize,
    /// Rows accepted by no replica even after the per-machine retry
    /// budget (counted in [`SimStore::failed_put_count`]). The rows
    /// did not land anywhere: [`SimStore::try_put_batch`] surfaces
    /// them as an error so the caller can re-issue the batch — the
    /// write buffer does exactly that before giving up (see
    /// [`crate::write`]).
    pub failed: usize,
    /// Table of the first fully-failed row, used by
    /// [`SimStore::try_put_batch`] to surface the error.
    pub first_failed_table: Option<Table>,
    /// When the first fully-failed row failed by *retry exhaustion*
    /// (transient faults survived the attempt budget on some replica),
    /// the attempts spent; `None` when its replica set was permanently
    /// dead. Decides [`StoreError::Transient`] vs
    /// [`StoreError::Unavailable`] in [`SimStore::try_put_batch`].
    pub transient_attempts: Option<u32>,
}

impl BatchPutOutcome {
    /// Total rows accounted for by this outcome.
    pub fn rows(&self) -> usize {
        self.replicated + self.partial + self.failed
    }
}

/// Report of one [`SimStore::try_repair`] anti-entropy pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Under-replicated rows the pass looked at.
    pub scanned: usize,
    /// Rows restored to full replication.
    pub repaired: usize,
    /// Rows still under-replicated afterwards (no reachable surviving
    /// copy, or a replica refused the re-write); they stay in the
    /// ledger for the next pass.
    pub still_degraded: usize,
}

/// Outcome of writing one machine's share of a batch, after the retry
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MachineWriteOutcome {
    /// The machine accepted the sub-batch.
    Accepted,
    /// Permanent machine death: retrying is hopeless.
    Dead,
    /// Transient faults survived every attempt (the budget spent).
    Exhausted(u32),
}

/// The simulated cluster. Cheap to share behind an `Arc`; all methods
/// take `&self`.
pub struct SimStore {
    cfg: StoreConfig,
    machines: Vec<Machine>,
    /// Writes that reached some but not all replicas (degraded
    /// durability — the data survives only while the accepting
    /// replicas stay up). [`SimStore::try_repair`] re-replicates them
    /// from the `under_replicated` ledger.
    partial_puts: AtomicU64,
    /// Writes that reached no replica at all (data loss if the caller
    /// ignores the zero return).
    failed_puts: AtomicU64,
    /// The attached chaos schedule, if any (see [`crate::faults`]).
    faults: RwLock<Option<FaultPlan>>,
    /// Simulated time: one tick per machine-level request, plus the
    /// ticks retry backoff burns. Fault-plan outage windows and
    /// breaker cooldowns are expressed in these ticks; no wall clock
    /// is consulted anywhere.
    clock: AtomicU64,
    /// The retry/backoff/breaker policy every operation routes
    /// through.
    retry: RwLock<RetryPolicy>,
    /// Per-machine circuit breakers and retry counters.
    breakers: Vec<Breaker>,
    /// Rows that reached only a strict subset of their replicas:
    /// namespaced key → placement token, deduplicated. Drained by
    /// [`SimStore::try_repair`].
    under_replicated: Mutex<BTreeMap<Vec<u8>, u64>>,
}

impl SimStore {
    /// Build a cluster of `cfg.machines` empty machines.
    pub fn new(cfg: StoreConfig) -> SimStore {
        assert!(cfg.machines >= 1, "need at least one machine");
        assert!(
            (1..=cfg.machines).contains(&cfg.replication),
            "replication must be in 1..=machines"
        );
        SimStore {
            cfg,
            machines: (0..cfg.machines).map(|_| Machine::new()).collect(),
            partial_puts: AtomicU64::new(0),
            failed_puts: AtomicU64::new(0),
            faults: RwLock::new(None),
            clock: AtomicU64::new(0),
            retry: RwLock::new(RetryPolicy::default()),
            breakers: (0..cfg.machines).map(|_| Breaker::new()).collect(),
            under_replicated: Mutex::new(BTreeMap::new()),
        }
    }

    /// Attach a chaos fault plan (or detach with `None`). Installing a
    /// plan resets every circuit breaker: a new schedule is a new
    /// experiment, and stale breaker state must not bleed into it.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.faults.write() = plan;
        for b in &self.breakers {
            b.reset();
        }
    }

    /// The currently attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.read().clone()
    }

    /// Install the retry/backoff/breaker policy (validated; panics on
    /// nonsense like a zero attempt budget).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        policy.validate();
        *self.retry.write() = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.read()
    }

    /// Current simulated time in ticks (monotone; advanced by every
    /// machine-level request and by retry backoff).
    pub fn clock_ticks(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advance simulated time without issuing requests — how tests and
    /// benches step past a scheduled outage window or a breaker
    /// cooldown.
    pub fn advance_clock(&self, ticks: u64) {
        self.clock.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Per-machine modelled latency multipliers from the attached
    /// fault plan (all `1.0` without one). Feed to
    /// [`CostModel::estimate_seconds_with_latency`](crate::CostModel::estimate_seconds_with_latency)
    /// so a degraded machine slows the modelled makespan down.
    pub fn latency_multipliers(&self) -> Vec<f64> {
        let plan = self.faults.read();
        (0..self.machines.len())
            .map(|m| plan.as_ref().map_or(1.0, |p| p.latency_multiplier(m)))
            .collect()
    }

    /// Cluster configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The machine index holding replica `replica` of a chunk with the
    /// given placement token.
    #[inline]
    pub fn machine_for(&self, token: u64, replica: usize) -> usize {
        ((token as usize) + replica) % self.machines.len()
    }

    fn namespaced(table: Table, key: &[u8]) -> Vec<u8> {
        let mut k = Vec::with_capacity(key.len() + 1);
        k.push(table.tag());
        k.extend_from_slice(key);
        k
    }

    /// Write a row to all replicas of its chunk. Returns the number of
    /// replicas that accepted the write (0 means fully unavailable).
    ///
    /// This is the seed's row-at-a-time reference path: a replica
    /// inside a transient fault window simply misses this write (no
    /// retry — the batched path, [`SimStore::put_batch`], is the one
    /// that routes through the [`RetryPolicy`]). Rows that reach only
    /// a subset of their replicas are recorded for
    /// [`SimStore::try_repair`].
    pub fn put(&self, table: Table, key: &[u8], token: u64, value: Bytes) -> usize {
        let stored = if self.cfg.compress {
            compress(&value)
        } else {
            value
        };
        let nk = Self::namespaced(table, key);
        let policy = *self.retry.read();
        let plan = self.faults.read();
        let mut ok = 0;
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            let now = self.clock.fetch_add(1, Ordering::Relaxed);
            if let Some(p) = plan.as_ref() {
                match p.verdict(m, now) {
                    FaultVerdict::Outage | FaultVerdict::Flake => {
                        self.breakers[m].record_failure(now, &policy);
                        continue;
                    }
                    // Corrupt-on-read does not apply to writes.
                    FaultVerdict::Healthy | FaultVerdict::CorruptRead => {}
                }
            }
            if self.machines[m].put(nk.clone(), stored.clone()) {
                self.breakers[m].record_success();
                ok += 1;
            }
        }
        drop(plan);
        if ok == 0 {
            self.failed_puts.fetch_add(1, Ordering::Relaxed);
        } else if ok < self.cfg.replication {
            self.partial_puts.fetch_add(1, Ordering::Relaxed);
            self.under_replicated.lock().insert(nk, token);
        }
        ok
    }

    /// Write one machine's share of a batch through the retry policy:
    /// transient faults are retried with capped exponential backoff in
    /// simulated time, permanent death fails fast, and an open circuit
    /// breaker skips the request (classified by whether the machine is
    /// actually dead behind it).
    fn put_machine_batch_with_retry(
        &self,
        m: usize,
        batch: Vec<(Vec<u8>, Bytes)>,
    ) -> MachineWriteOutcome {
        let policy = *self.retry.read();
        let plan = self.faults.read();
        let can_fault = plan.as_ref().is_some_and(|p| p.can_fault());
        if !can_fault {
            // Fast path: without transient faults every failure is
            // permanent death — single shot, no batch clone, no
            // backoff. The chaos layer costs the healthy ingest path
            // one clock tick.
            self.clock.fetch_add(1, Ordering::Relaxed);
            return match self.machines[m].put_batch(batch) {
                Ok(()) => MachineWriteOutcome::Accepted,
                Err(MachineDown) => MachineWriteOutcome::Dead,
            };
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt > 1 {
                self.breakers[m].note_retry();
            }
            let now = self.clock.fetch_add(1, Ordering::Relaxed);
            let transient = if !self.breakers[m].allows(now, &policy) {
                // Skipped by an open breaker: permanent if the machine
                // really is dead behind it, transient otherwise.
                !self.machines[m].is_down()
            } else {
                match plan
                    .as_ref()
                    .map_or(FaultVerdict::Healthy, |p| p.verdict(m, now))
                {
                    FaultVerdict::Outage | FaultVerdict::Flake => {
                        self.breakers[m].record_failure(now, &policy);
                        true
                    }
                    // Corrupt-on-read does not apply to writes.
                    FaultVerdict::Healthy | FaultVerdict::CorruptRead => {
                        match self.machines[m].put_batch(batch.clone()) {
                            Ok(()) => {
                                self.breakers[m].record_success();
                                return MachineWriteOutcome::Accepted;
                            }
                            Err(MachineDown) => return MachineWriteOutcome::Dead,
                        }
                    }
                }
            };
            if !transient {
                return MachineWriteOutcome::Dead;
            }
            if attempt >= policy.max_attempts {
                return MachineWriteOutcome::Exhausted(attempt);
            }
            self.clock
                .fetch_add(policy.backoff_ticks(attempt), Ordering::Relaxed);
        }
    }

    /// Write a batch of rows, grouped into **one round trip per
    /// machine**: every row is routed to all `r` replica machines of
    /// its placement token, the rows destined to one machine travel
    /// together as a single [`Machine::put_batch`], and per-row
    /// replica outcomes are re-assembled afterwards. The whole batch
    /// is always processed — a dead machine fails only the rows
    /// placed on it — so the partial/failed put counters account for
    /// every row, exactly as `rows.len()` individual [`SimStore::put`]
    /// calls would. Each machine's sub-batch routes through the
    /// [`RetryPolicy`]: transiently refused round trips are re-issued
    /// with backoff in simulated time before any row is declared
    /// failed, and rows that reach only a subset of their replicas are
    /// recorded for [`SimStore::try_repair`].
    pub fn put_batch(&self, rows: Vec<PutRow>) -> BatchPutOutcome {
        let mut outcome = BatchPutOutcome::default();
        if rows.is_empty() {
            return outcome;
        }
        // Namespace + compress each row once, up front.
        let prepared: Vec<(Table, Vec<u8>, u64, Bytes)> = rows
            .into_iter()
            .map(|row| {
                let stored = if self.cfg.compress {
                    compress(&row.value)
                } else {
                    row.value
                };
                (
                    row.table,
                    Self::namespaced(row.table, &row.key),
                    row.token,
                    stored,
                )
            })
            .collect();
        // Group row indices per destination machine (all replicas of a
        // row, merged with every other row landing on that machine).
        let mut per_machine: Vec<Vec<usize>> = vec![Vec::new(); self.machines.len()];
        for (i, &(_, _, token, _)) in prepared.iter().enumerate() {
            for r in 0..self.cfg.replication {
                per_machine[self.machine_for(token, r)].push(i);
            }
        }
        let mut ok = vec![0usize; prepared.len()];
        let mut machine_result: Vec<Option<MachineWriteOutcome>> = vec![None; self.machines.len()];
        for (m, idxs) in per_machine.into_iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let batch: Vec<(Vec<u8>, Bytes)> = idxs
                .iter()
                .map(|&i| (prepared[i].1.clone(), prepared[i].3.clone()))
                .collect();
            let res = self.put_machine_batch_with_retry(m, batch);
            if res == MachineWriteOutcome::Accepted {
                for &i in &idxs {
                    ok[i] += 1;
                }
            }
            machine_result[m] = Some(res);
        }
        for (i, &(table, ref nk, token, _)) in prepared.iter().enumerate() {
            if ok[i] == 0 {
                self.failed_puts.fetch_add(1, Ordering::Relaxed);
                if outcome.first_failed_table.is_none() {
                    outcome.first_failed_table = Some(table);
                    // Classify the first failed row: transient if any
                    // of its replicas exhausted the retry budget,
                    // permanent if they were all dead.
                    outcome.transient_attempts = (0..self.cfg.replication).find_map(|r| {
                        match machine_result[self.machine_for(token, r)] {
                            Some(MachineWriteOutcome::Exhausted(a)) => Some(a),
                            _ => None,
                        }
                    });
                }
                outcome.failed += 1;
            } else if ok[i] < self.cfg.replication {
                self.partial_puts.fetch_add(1, Ordering::Relaxed);
                outcome.partial += 1;
                self.under_replicated.lock().insert(nk.clone(), token);
            } else {
                outcome.replicated += 1;
            }
        }
        outcome
    }

    /// Fallible [`SimStore::put_batch`]: the whole batch is still
    /// processed (rows on healthy machines land, counters account for
    /// every row, transiently-refused sub-batches are retried per the
    /// [`RetryPolicy`]), then any row that reached **zero** replicas
    /// surfaces as an error — a batched write the cluster did not
    /// accept anywhere must fail the caller, not silently shrink the
    /// index. The error distinguishes retry exhaustion
    /// ([`StoreError::Transient`], worth re-issuing later) from a
    /// permanently dead replica set ([`StoreError::Unavailable`]).
    pub fn try_put_batch(&self, rows: Vec<PutRow>) -> Result<BatchPutOutcome, StoreError> {
        let outcome = self.put_batch(rows);
        match (outcome.first_failed_table, outcome.transient_attempts) {
            (Some(table), Some(attempts)) => Err(StoreError::Transient { attempts, table }),
            (Some(table), None) => Err(StoreError::Unavailable { table }),
            (None, _) => Ok(outcome),
        }
    }

    /// Writes that reached only a strict subset of their replicas so
    /// far (degraded-durability writes).
    pub fn partial_put_count(&self) -> u64 {
        self.partial_puts.load(Ordering::Relaxed)
    }

    /// Writes that reached no replica so far (lost unless retried).
    pub fn failed_put_count(&self) -> u64 {
        self.failed_puts.load(Ordering::Relaxed)
    }

    /// One fault-aware, breaker-gated, retrying read: sweep the
    /// replicas in ring order once per attempt, backing off in
    /// simulated time between attempts. Returns the served value plus
    /// whether the fault plan corrupted this read on the wire.
    ///
    /// Error classification: a sweep that saw only *permanent* death
    /// (every replica [`Machine::is_down`]) surfaces
    /// [`StoreError::Unavailable`] immediately — retrying a dead
    /// replica set is hopeless. A sweep that saw any *transient*
    /// refusal keeps retrying until the attempt budget is spent, then
    /// surfaces [`StoreError::Transient`].
    fn read_with_retry<T>(
        &self,
        table: Table,
        token: u64,
        op: impl Fn(&Machine) -> Result<T, MachineDown>,
    ) -> Result<(T, bool), StoreError> {
        let policy = *self.retry.read();
        let plan = self.faults.read();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let mut saw_transient = false;
            for r in 0..self.cfg.replication {
                let m = self.machine_for(token, r);
                if attempt > 1 {
                    self.breakers[m].note_retry();
                }
                let now = self.clock.fetch_add(1, Ordering::Relaxed);
                if !self.breakers[m].allows(now, &policy) {
                    // Skipped by an open breaker: permanent if the
                    // machine really is dead behind it, transient
                    // otherwise (half-open probing will re-test it).
                    saw_transient |= !self.machines[m].is_down();
                    continue;
                }
                let verdict = plan
                    .as_ref()
                    .map_or(FaultVerdict::Healthy, |p| p.verdict(m, now));
                match verdict {
                    FaultVerdict::Outage | FaultVerdict::Flake => {
                        self.breakers[m].record_failure(now, &policy);
                        saw_transient = true;
                        continue;
                    }
                    FaultVerdict::Healthy | FaultVerdict::CorruptRead => {}
                }
                match op(&self.machines[m]) {
                    Ok(v) => {
                        self.breakers[m].record_success();
                        return Ok((v, verdict == FaultVerdict::CorruptRead));
                    }
                    // Permanent death: fail over to the next replica;
                    // not the breaker's business (it guards transient
                    // faults) and never retried.
                    Err(MachineDown) => continue,
                }
            }
            if !saw_transient {
                return Err(StoreError::Unavailable { table });
            }
            if attempt >= policy.max_attempts {
                return Err(StoreError::Transient {
                    attempts: attempt,
                    table,
                });
            }
            self.clock
                .fetch_add(policy.backoff_ticks(attempt), Ordering::Relaxed);
        }
    }

    /// Replace a read's bytes with garbage when the fault plan
    /// corrupted it on the wire (the stored row is untouched).
    fn maybe_corrupted(bytes: Bytes, corrupt: bool) -> Bytes {
        if corrupt {
            Bytes::from_static(CORRUPT_ON_READ_MARKER)
        } else {
            bytes
        }
    }

    /// Point lookup with retry and replica failover.
    pub fn get(&self, table: Table, key: &[u8], token: u64) -> Result<Option<Bytes>, StoreError> {
        let nk = Self::namespaced(table, key);
        let (got, corrupt) = self.read_with_retry(table, token, |m| m.get(&nk))?;
        match got {
            Some(bytes) => Ok(Some(
                self.maybe_decompress(Self::maybe_corrupted(bytes, corrupt))?,
            )),
            None => Ok(None),
        }
    }

    /// Ordered prefix scan with retry and replica failover. Keys are
    /// returned without the table namespace byte.
    pub fn scan_prefix(
        &self,
        table: Table,
        prefix: &[u8],
        token: u64,
    ) -> Result<Vec<(Vec<u8>, Bytes)>, StoreError> {
        let np = Self::namespaced(table, prefix);
        let (rows, corrupt) = self.read_with_retry(table, token, |m| m.scan_prefix(&np))?;
        let mut out = Vec::with_capacity(rows.len());
        for (k, v) in rows {
            out.push((
                k[1..].to_vec(),
                self.maybe_decompress(Self::maybe_corrupted(v, corrupt))?,
            ));
        }
        Ok(out)
    }

    /// Batched point lookups with retry and replica failover: all keys
    /// share one placement token (one chunk), so a single machine
    /// answers the whole batch in one round-trip.
    pub fn multi_get(
        &self,
        table: Table,
        keys: &[&[u8]],
        token: u64,
    ) -> Result<Vec<Option<Bytes>>, StoreError> {
        let nks: Vec<Vec<u8>> = keys.iter().map(|k| Self::namespaced(table, k)).collect();
        let (values, corrupt) = self.read_with_retry(table, token, |m| m.multi_get(&nks))?;
        let mut out = Vec::with_capacity(values.len());
        for v in values {
            out.push(match v {
                Some(bytes) => Some(self.maybe_decompress(Self::maybe_corrupted(bytes, corrupt))?),
                None => None,
            });
        }
        Ok(out)
    }

    /// Grouped prefix scan with retry and replica failover: one result
    /// group per prefix, in input order, served by a single machine
    /// round-trip (all prefixes share one placement token). Keys are
    /// returned without the table namespace byte. This is the fetch
    /// unit of the multipoint snapshot planner: the union of a query
    /// batch's tree-path deltas for one `(tsid, sid)` chunk travels as
    /// one request.
    pub fn scan_prefix_batch(
        &self,
        table: Table,
        prefixes: &[&[u8]],
        token: u64,
    ) -> Result<Vec<crate::machine::ScanRows>, StoreError> {
        let nps: Vec<Vec<u8>> = prefixes
            .iter()
            .map(|p| Self::namespaced(table, p))
            .collect();
        let (groups, corrupt) = self.read_with_retry(table, token, |m| m.scan_prefixes(&nps))?;
        let mut out = Vec::with_capacity(groups.len());
        for rows in groups {
            let mut group = Vec::with_capacity(rows.len());
            for (k, v) in rows {
                group.push((
                    k[1..].to_vec(),
                    self.maybe_decompress(Self::maybe_corrupted(v, corrupt))?,
                ));
            }
            out.push(group);
        }
        Ok(out)
    }

    fn maybe_decompress(&self, bytes: Bytes) -> Result<Bytes, StoreError> {
        if self.cfg.compress {
            decompress(&bytes).map_err(StoreError::Corrupt)
        } else {
            Ok(bytes)
        }
    }

    /// Mark a machine failed (**permanent** death until healed —
    /// transient faults are the fault plan's job, see
    /// [`crate::faults`]).
    pub fn fail_machine(&self, idx: usize) {
        self.machines[idx].set_down(true);
    }

    /// Bring a failed machine back (its data is intact). Also resets
    /// the machine's circuit breaker: a freshly recovered replica
    /// starts with a clean slate.
    pub fn heal_machine(&self, idx: usize) {
        self.machines[idx].set_down(false);
        self.breakers[idx].reset();
    }

    /// Heal every machine (recovery-test and bench convenience).
    pub fn heal_all(&self) {
        for m in 0..self.machines.len() {
            self.heal_machine(m);
        }
    }

    /// Rows currently known to be under-replicated (the repair
    /// ledger's size).
    pub fn under_replicated_count(&self) -> usize {
        self.under_replicated.lock().len()
    }

    /// One anti-entropy pass over the under-replication ledger: for
    /// every recorded row, read the stored bytes back from a surviving
    /// replica and re-write them — verbatim, already compressed — to
    /// every replica of the row's chunk (idempotent for the ones that
    /// already hold it). Rows whose surviving copies are unreachable,
    /// or whose re-writes are refused, stay in the ledger for the next
    /// pass; a corrupt-on-read verdict disqualifies a replica as the
    /// repair source (garbage must never be propagated into stored
    /// state). After a pass that repairs everything, the store's
    /// content is byte-identical to a never-degraded build.
    pub fn try_repair(&self) -> Result<RepairReport, StoreError> {
        let pending: Vec<(Vec<u8>, u64)> = {
            let mut ledger = self.under_replicated.lock();
            std::mem::take(&mut *ledger).into_iter().collect()
        };
        let mut report = RepairReport {
            scanned: pending.len(),
            ..RepairReport::default()
        };
        let policy = *self.retry.read();
        let plan = self.faults.read();
        for (nk, token) in pending {
            let mut copy: Option<Bytes> = None;
            for r in 0..self.cfg.replication {
                let m = self.machine_for(token, r);
                let now = self.clock.fetch_add(1, Ordering::Relaxed);
                // hgs-lint: allow(no-panic-in-try, "machine_for maps every token into 0..machines.len(), and breakers is built with one entry per machine")
                if !self.breakers[m].allows(now, &policy) {
                    continue;
                }
                match plan
                    .as_ref()
                    .map_or(FaultVerdict::Healthy, |p| p.verdict(m, now))
                {
                    FaultVerdict::Outage | FaultVerdict::Flake | FaultVerdict::CorruptRead => {
                        continue;
                    }
                    FaultVerdict::Healthy => {}
                }
                // hgs-lint: allow(no-panic-in-try, "machine_for maps every token into 0..machines.len()")
                if let Ok(Some(v)) = self.machines[m].get(&nk) {
                    copy = Some(v);
                    break;
                }
            }
            let Some(v) = copy else {
                report.still_degraded += 1;
                self.under_replicated.lock().insert(nk, token);
                continue;
            };
            let mut complete = true;
            for r in 0..self.cfg.replication {
                let m = self.machine_for(token, r);
                let now = self.clock.fetch_add(1, Ordering::Relaxed);
                let refused = matches!(
                    plan.as_ref()
                        .map_or(FaultVerdict::Healthy, |p| p.verdict(m, now)),
                    FaultVerdict::Outage | FaultVerdict::Flake
                );
                // hgs-lint: allow(no-panic-in-try, "machine_for maps every token into 0..machines.len()")
                if refused || !self.machines[m].put(nk.clone(), v.clone()) {
                    complete = false;
                }
            }
            if complete {
                report.repaired += 1;
            } else {
                report.still_degraded += 1;
                self.under_replicated.lock().insert(nk, token);
            }
        }
        Ok(report)
    }

    /// Per-machine access-counter snapshot, with the store-level
    /// retry/breaker counters folded in.
    pub fn stats_snapshot(&self) -> StoreStatsSnapshot {
        self.machines
            .iter()
            .zip(&self.breakers)
            .map(|(m, b)| {
                let mut s = m.stats().snapshot();
                s.retries = b.retries();
                s.breaker_opens = b.opens();
                s
            })
            .collect()
    }

    /// Difference of two snapshots (per machine).
    pub fn stats_since(now: &StoreStatsSnapshot, then: &StoreStatsSnapshot) -> StoreStatsSnapshot {
        now.iter()
            .zip(then.iter())
            .map(|(a, b)| a.since(b))
            .collect()
    }

    /// Total stored bytes across machines — the index *size* measure of
    /// Table 1 (counts each replica once; divide by `r` for logical
    /// size).
    pub fn stored_bytes(&self) -> usize {
        self.machines.iter().map(|m| m.stored_bytes()).sum()
    }

    /// Total row count across machines (replicas included).
    pub fn row_count(&self) -> usize {
        self.machines.iter().map(|m| m.row_count()).sum()
    }

    /// Per-machine row counts; used to check placement balance.
    pub fn rows_per_machine(&self) -> Vec<usize> {
        self.machines.iter().map(|m| m.row_count()).collect()
    }

    /// Full per-machine content dump (namespaced keys, stored values),
    /// out-of-band: served even from down machines and not counted in
    /// the stats. This is the oracle of the build-equivalence property
    /// tests — two stores are interchangeable iff their dumps are
    /// row-for-row identical.
    pub fn content_rows(&self) -> Vec<crate::machine::ScanRows> {
        self.machines.iter().map(|m| m.dump_rows()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{DeltaKey, PlacementKey};

    fn store(m: usize, r: usize) -> SimStore {
        SimStore::new(StoreConfig::new(m, r))
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(3, 1);
        let k = DeltaKey::new(0, 1, 2, 3);
        s.put(
            Table::Deltas,
            &k.encode(),
            k.placement().token(),
            Bytes::from_static(b"v"),
        );
        let got = s
            .get(Table::Deltas, &k.encode(), k.placement().token())
            .unwrap();
        assert_eq!(got.as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn tables_are_isolated() {
        let s = store(1, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"a"));
        s.put(Table::Versions, b"k", 0, Bytes::from_static(b"b"));
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(
            s.get(Table::Versions, b"k", 0).unwrap().as_deref(),
            Some(&b"b"[..])
        );
    }

    #[test]
    fn scan_returns_clustered_rows_in_order() {
        let s = store(2, 1);
        let pk = PlacementKey::new(5, 0);
        for pid in [3u32, 1, 2, 0] {
            let k = DeltaKey::new(5, 0, 9, pid);
            s.put(
                Table::Deltas,
                &k.encode(),
                pk.token(),
                Bytes::from(vec![pid as u8]),
            );
        }
        // A row of another delta on the same placement must not appear.
        let other = DeltaKey::new(5, 0, 10, 0);
        s.put(
            Table::Deltas,
            &other.encode(),
            pk.token(),
            Bytes::from_static(b"x"),
        );
        let rows = s
            .scan_prefix(Table::Deltas, &DeltaKey::delta_prefix(5, 0, 9), pk.token())
            .unwrap();
        assert_eq!(rows.len(), 4);
        let pids: Vec<u32> = rows
            .iter()
            .map(|(k, _)| DeltaKey::decode(k).unwrap().pid)
            .collect();
        assert_eq!(pids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn replication_survives_failure() {
        let s = store(3, 2);
        let token = 0u64;
        s.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        let primary = s.machine_for(token, 0);
        s.fail_machine(primary);
        assert_eq!(
            s.get(Table::Deltas, b"k", token).unwrap().as_deref(),
            Some(&b"v"[..])
        );
        // Failing the replica too makes the chunk unavailable.
        s.fail_machine(s.machine_for(token, 1));
        assert!(matches!(
            s.get(Table::Deltas, b"k", token),
            Err(StoreError::Unavailable { .. })
        ));
        s.heal_machine(primary);
        assert!(s.get(Table::Deltas, b"k", token).is_ok());
    }

    #[test]
    fn no_replication_no_failover() {
        let s = store(2, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"v"));
        s.fail_machine(s.machine_for(0, 0));
        assert!(s.get(Table::Deltas, b"k", 0).is_err());
    }

    #[test]
    fn compression_is_transparent() {
        let s = SimStore::new(StoreConfig::new(1, 1).with_compression(true));
        let value = Bytes::from(b"abcabcabcabcabcabcabcabcabc".repeat(100));
        s.put(Table::Deltas, b"k", 0, value.clone());
        assert!(
            s.stored_bytes() < value.len(),
            "stored form should be smaller"
        );
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&value[..])
        );
    }

    #[test]
    fn replicas_double_stored_bytes() {
        let s1 = store(4, 1);
        let s2 = store(4, 2);
        for s in [&s1, &s2] {
            for i in 0..32u64 {
                s.put(
                    Table::Deltas,
                    &i.to_be_bytes(),
                    i * 7919,
                    Bytes::from(vec![0u8; 100]),
                );
            }
        }
        assert_eq!(s2.stored_bytes(), 2 * s1.stored_bytes());
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let s = store(4, 1);
        for i in 0..4000u64 {
            let pk = PlacementKey::new((i / 64) as u32, (i % 64) as u32);
            s.put(
                Table::Deltas,
                &i.to_be_bytes(),
                pk.token(),
                Bytes::from_static(b"v"),
            );
        }
        let rows = s.rows_per_machine();
        let min = *rows.iter().min().unwrap();
        let max = *rows.iter().max().unwrap();
        assert!(max < 2 * min, "placement imbalance: {rows:?}");
    }

    #[test]
    fn stats_bracketing() {
        let s = store(2, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"hello"));
        let t0 = s.stats_snapshot();
        s.get(Table::Deltas, b"k", 0).unwrap();
        let diff = SimStore::stats_since(&s.stats_snapshot(), &t0);
        let total_gets: u64 = diff.iter().map(|m| m.gets).sum();
        assert_eq!(total_gets, 1);
    }

    #[test]
    #[should_panic]
    fn invalid_replication_rejected() {
        let _ = SimStore::new(StoreConfig::new(2, 3));
    }

    #[test]
    fn scan_prefix_batch_matches_individual_scans() {
        let s = store(3, 1);
        let pk = PlacementKey::new(2, 1);
        for did in 0..4u64 {
            for pid in 0..3u32 {
                let k = DeltaKey::new(2, 1, did, pid);
                s.put(
                    Table::Deltas,
                    &k.encode(),
                    pk.token(),
                    Bytes::from(vec![did as u8, pid as u8]),
                );
            }
        }
        let prefixes: Vec<[u8; 16]> = (0..4u64)
            .map(|did| DeltaKey::delta_prefix(2, 1, did))
            .collect();
        let refs: Vec<&[u8]> = prefixes.iter().map(|p| &p[..]).collect();
        let before = s.stats_snapshot();
        let groups = s
            .scan_prefix_batch(Table::Deltas, &refs, pk.token())
            .unwrap();
        let diff = SimStore::stats_since(&s.stats_snapshot(), &before);
        assert_eq!(diff.iter().map(|m| m.batches).sum::<u64>(), 1);
        for (p, group) in refs.iter().zip(&groups) {
            let single = s.scan_prefix(Table::Deltas, p, pk.token()).unwrap();
            assert_eq!(group, &single);
        }
    }

    #[test]
    fn batched_reads_fail_over_and_surface_unavailability() {
        let s = store(3, 2);
        let token = 0u64;
        s.put(Table::Deltas, b"k1", token, Bytes::from_static(b"a"));
        s.put(Table::Deltas, b"k2", token, Bytes::from_static(b"b"));
        s.fail_machine(s.machine_for(token, 0));
        let got = s
            .multi_get(Table::Deltas, &[b"k1", b"k2", b"nope"], token)
            .unwrap();
        assert_eq!(got[0].as_deref(), Some(&b"a"[..]));
        assert_eq!(got[1].as_deref(), Some(&b"b"[..]));
        assert_eq!(got[2], None);
        s.fail_machine(s.machine_for(token, 1));
        assert!(matches!(
            s.multi_get(Table::Deltas, &[b"k1"], token),
            Err(StoreError::Unavailable { .. })
        ));
        assert!(matches!(
            s.scan_prefix_batch(Table::Deltas, &[b"k"], token),
            Err(StoreError::Unavailable { .. })
        ));
    }

    #[test]
    fn put_batch_matches_individual_puts_and_counts_machine_round_trips() {
        let individual = store(3, 1);
        let batched = store(3, 1);
        let rows: Vec<PutRow> = (0..24u64)
            .map(|i| {
                PutRow::new(
                    Table::Deltas,
                    i.to_be_bytes().to_vec(),
                    i * 7919,
                    Bytes::from(vec![i as u8; 8]),
                )
            })
            .collect();
        for r in &rows {
            individual.put(r.table, &r.key, r.token, r.value.clone());
        }
        let before = batched.stats_snapshot();
        let outcome = batched.try_put_batch(rows.clone()).unwrap();
        assert_eq!(outcome.replicated, rows.len());
        assert_eq!(outcome.rows(), rows.len());
        let diff = SimStore::stats_since(&batched.stats_snapshot(), &before);
        let put_batches: u64 = diff.iter().map(|m| m.put_batches).sum();
        let puts: u64 = diff.iter().map(|m| m.puts).sum();
        assert_eq!(puts, rows.len() as u64, "one logical put per row");
        assert!(
            put_batches <= batched.machine_count() as u64,
            "at most one round trip per machine, got {put_batches}"
        );
        assert_eq!(
            individual.content_rows(),
            batched.content_rows(),
            "batched writes must place identical content"
        );
    }

    #[test]
    fn put_batch_replicates_like_put() {
        let s = store(4, 2);
        s.try_put_batch(vec![PutRow::new(
            Table::Deltas,
            b"k".to_vec(),
            3,
            Bytes::from_static(b"v"),
        )])
        .unwrap();
        s.fail_machine(s.machine_for(3, 0));
        assert_eq!(
            s.get(Table::Deltas, b"k", 3).unwrap().as_deref(),
            Some(&b"v"[..]),
            "batched write must reach every replica"
        );
    }

    #[test]
    fn put_batch_processes_whole_batch_and_accounts_every_row() {
        let s = store(3, 1);
        // Tokens 0, 1, 2 land on distinct machines; kill machine of
        // token 1.
        let dead = s.machine_for(1, 0);
        s.fail_machine(dead);
        let rows: Vec<PutRow> = (0..9u64)
            .map(|i| {
                PutRow::new(
                    Table::Deltas,
                    i.to_be_bytes().to_vec(),
                    i % 3,
                    Bytes::from_static(b"v"),
                )
            })
            .collect();
        let outcome = s.put_batch(rows);
        assert_eq!(outcome.failed, 3, "every row of the dead machine fails");
        assert_eq!(outcome.replicated, 6, "healthy machines' rows all land");
        assert_eq!(outcome.partial, 0);
        assert_eq!(outcome.rows(), 9, "every row is accounted exactly once");
        assert_eq!(s.failed_put_count(), 3);
        assert_eq!(s.row_count(), 6);
        assert!(matches!(
            s.try_put_batch(vec![PutRow::new(
                Table::Versions,
                b"x".to_vec(),
                1,
                Bytes::from_static(b"v")
            )]),
            Err(StoreError::Unavailable {
                table: Table::Versions
            })
        ));
    }

    #[test]
    fn put_batch_counts_partial_replication() {
        let s = store(3, 2);
        s.fail_machine(s.machine_for(0, 1));
        let outcome = s.put_batch(vec![PutRow::new(
            Table::Deltas,
            b"k".to_vec(),
            0,
            Bytes::from_static(b"v"),
        )]);
        assert_eq!(outcome.partial, 1);
        assert_eq!(outcome.failed, 0);
        assert_eq!(s.partial_put_count(), 1);
    }

    #[test]
    fn batched_compression_is_transparent() {
        let s = SimStore::new(StoreConfig::new(1, 1).with_compression(true));
        let value = Bytes::from(b"abcabcabcabcabcabcabcabcabc".repeat(100));
        s.try_put_batch(vec![PutRow::new(
            Table::Deltas,
            b"k".to_vec(),
            0,
            value.clone(),
        )])
        .unwrap();
        assert!(s.stored_bytes() < value.len());
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&value[..])
        );
    }

    #[test]
    fn flakes_are_retried_to_success_and_counted() {
        // One machine, r = 1: no failover masks the flakes, so every
        // success after a flaky verdict is the retry layer's doing.
        let s = store(1, 1);
        s.set_fault_plan(Some(
            FaultPlan::new(0xDECAF)
                .with_flake_per_mille(300)
                .with_corrupt_per_mille(0),
        ));
        s.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            breaker_threshold: 0,
            ..RetryPolicy::default()
        });
        let mut wrote = 0usize;
        for i in 0..50u64 {
            if s.put(Table::Deltas, &i.to_be_bytes(), i, Bytes::from_static(b"v")) == 1 {
                wrote += 1;
            }
        }
        assert!(wrote > 25, "most single puts land despite flakes: {wrote}");
        let mut ok = 0usize;
        for i in 0..50u64 {
            match s.get(Table::Deltas, &i.to_be_bytes(), i) {
                Ok(_) => ok += 1,
                Err(StoreError::Transient { attempts, .. }) => {
                    assert_eq!(attempts, 8, "exhaustion reports the budget")
                }
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
        assert!(ok > 40, "a 0.3 flake rate rarely survives 8 attempts: {ok}");
        let retries: u64 = s.stats_snapshot().iter().map(|m| m.retries).sum();
        assert!(retries > 0, "flaky reads must have been re-issued");
    }

    #[test]
    fn outage_window_surfaces_transient_then_heals_with_time() {
        let s = store(1, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"v"));
        s.set_fault_plan(Some(FaultPlan::new(1).with_outage(0, 0, 10_000)));
        match s.get(Table::Deltas, b"k", 0) {
            Err(StoreError::Transient { attempts, .. }) => {
                assert_eq!(attempts, s.retry_policy().max_attempts);
            }
            other => panic!("expected Transient during the outage, got {other:?}"),
        }
        // Simulated time passes the window (plus any breaker cooldown):
        // the same read answers again, no healing call required.
        s.advance_clock(20_000);
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&b"v"[..]),
            "an elapsed outage window heals on its own"
        );
    }

    #[test]
    fn permanent_death_stays_unavailable_not_transient() {
        let s = store(2, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"v"));
        s.fail_machine(s.machine_for(0, 0));
        // Even with a fault plan attached, a dead replica set is
        // permanent: no retry budget is burned, the error says so.
        s.set_fault_plan(Some(FaultPlan::new(2)));
        let before: u64 = s.stats_snapshot().iter().map(|m| m.retries).sum();
        assert!(matches!(
            s.get(Table::Deltas, b"k", 0),
            Err(StoreError::Unavailable { .. })
        ));
        let after: u64 = s.stats_snapshot().iter().map(|m| m.retries).sum();
        assert_eq!(after, before, "dead machines are not retried");
    }

    #[test]
    fn failover_masks_an_outage_on_one_replica() {
        let s = store(3, 2);
        let token = 0u64;
        s.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        let primary = s.machine_for(token, 0);
        s.set_fault_plan(Some(FaultPlan::new(3).with_outage(primary, 0, 1_000_000)));
        for _ in 0..20 {
            assert_eq!(
                s.get(Table::Deltas, b"k", token).unwrap().as_deref(),
                Some(&b"v"[..]),
                "the healthy replica serves through the outage"
            );
        }
    }

    #[test]
    fn breaker_opens_under_sustained_outage_and_probes_shut() {
        let s = store(1, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"v"));
        s.set_retry_policy(RetryPolicy {
            breaker_threshold: 4,
            breaker_cooldown_ticks: 50,
            ..RetryPolicy::default()
        });
        s.set_fault_plan(Some(FaultPlan::new(4).with_outage(0, 0, 500)));
        for _ in 0..10 {
            let _ = s.get(Table::Deltas, b"k", 0);
        }
        let opens: u64 = s.stats_snapshot().iter().map(|m| m.breaker_opens).sum();
        assert!(opens >= 1, "sustained faults must open the breaker");
        // Past the window and cooldown, a half-open probe succeeds and
        // closes the breaker; reads answer again.
        s.advance_clock(1_000);
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&b"v"[..])
        );
    }

    #[test]
    fn corrupt_on_read_surfaces_corrupt_under_compression() {
        let s = SimStore::new(StoreConfig::new(1, 1).with_compression(true));
        let value = Bytes::from(b"abcabcabc".repeat(50));
        s.put(Table::Deltas, b"k", 0, value.clone());
        s.set_fault_plan(Some(FaultPlan::new(5).with_corrupt_per_mille(1000)));
        assert!(matches!(
            s.get(Table::Deltas, b"k", 0),
            Err(StoreError::Corrupt(_))
        ));
        // The stored bytes are untouched: detach the plan and the real
        // value comes back.
        s.set_fault_plan(None);
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&value[..])
        );
    }

    #[test]
    fn corrupt_on_read_replaces_bytes_without_touching_storage() {
        let s = store(1, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"real"));
        let before = s.content_rows();
        s.set_fault_plan(Some(FaultPlan::new(6).with_corrupt_per_mille(1000)));
        let got = s.get(Table::Deltas, b"k", 0).unwrap();
        assert_eq!(
            got.as_deref(),
            Some(crate::faults::CORRUPT_ON_READ_MARKER),
            "uncompressed corrupt reads hand back the marker for the decoder to reject"
        );
        assert_eq!(s.content_rows(), before, "corruption is wire-only");
    }

    #[test]
    fn transient_batch_exhaustion_surfaces_transient_error() {
        let s = store(1, 1);
        s.set_fault_plan(Some(FaultPlan::new(7).with_outage(0, 0, 1_000_000)));
        let err = s
            .try_put_batch(vec![PutRow::new(
                Table::Versions,
                b"k".to_vec(),
                0,
                Bytes::from_static(b"v"),
            )])
            .unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Transient {
                    table: Table::Versions,
                    ..
                }
            ),
            "retry exhaustion must not masquerade as permanent death: {err}"
        );
        assert_eq!(s.failed_put_count(), 1);
    }

    #[test]
    fn partial_writes_are_recorded_and_repaired() {
        let s = store(3, 2);
        let token = 0u64;
        s.fail_machine(s.machine_for(token, 1));
        s.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        assert_eq!(s.under_replicated_count(), 1);
        // While the replica is still dead, repair makes no progress
        // but loses nothing.
        let stuck = s.try_repair().unwrap();
        assert_eq!(stuck.scanned, 1);
        assert_eq!(stuck.still_degraded, 1);
        assert_eq!(s.under_replicated_count(), 1);
        // Healed, the pass restores full replication.
        s.heal_all();
        let report = s.try_repair().unwrap();
        assert_eq!(report.repaired, 1);
        assert_eq!(s.under_replicated_count(), 0);
        // Byte-identical to a never-degraded build.
        let oracle = store(3, 2);
        oracle.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        assert_eq!(s.content_rows(), oracle.content_rows());
        // And the row now survives the primary's death.
        s.fail_machine(s.machine_for(token, 0));
        assert_eq!(
            s.get(Table::Deltas, b"k", token).unwrap().as_deref(),
            Some(&b"v"[..])
        );
    }

    #[test]
    fn batched_partial_writes_feed_the_repair_ledger() {
        let s = store(3, 2);
        let dead = s.machine_for(0, 1);
        s.fail_machine(dead);
        let rows: Vec<PutRow> = (0..6u64)
            .map(|i| {
                PutRow::new(
                    Table::Deltas,
                    i.to_be_bytes().to_vec(),
                    0,
                    Bytes::from_static(b"v"),
                )
            })
            .collect();
        let outcome = s.try_put_batch(rows).unwrap();
        assert_eq!(outcome.partial, 6);
        assert_eq!(s.under_replicated_count(), 6);
        s.heal_all();
        let report = s.try_repair().unwrap();
        assert_eq!(report.repaired, 6);
        assert_eq!(s.under_replicated_count(), 0);
    }

    #[test]
    fn repair_refuses_a_corrupt_read_as_its_source() {
        let s = store(3, 2);
        let token = 0u64;
        s.fail_machine(s.machine_for(token, 1));
        s.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        s.heal_all();
        // Every repair-source read draws a corrupt verdict: the pass
        // must refuse to propagate garbage and leave the row recorded.
        s.set_fault_plan(Some(FaultPlan::new(8).with_corrupt_per_mille(1000)));
        let report = s.try_repair().unwrap();
        assert_eq!(report.still_degraded, 1);
        assert_eq!(s.under_replicated_count(), 1);
        s.set_fault_plan(None);
        assert_eq!(s.try_repair().unwrap().repaired, 1);
        let oracle = store(3, 2);
        oracle.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        assert_eq!(s.content_rows(), oracle.content_rows());
    }

    #[test]
    fn put_failure_counters_track_degraded_writes() {
        let s = store(3, 2);
        let token = 0u64;
        assert_eq!(
            s.put(Table::Deltas, b"a", token, Bytes::from_static(b"v")),
            2
        );
        assert_eq!(s.partial_put_count(), 0);
        assert_eq!(s.failed_put_count(), 0);
        s.fail_machine(s.machine_for(token, 1));
        assert_eq!(
            s.put(Table::Deltas, b"b", token, Bytes::from_static(b"v")),
            1
        );
        assert_eq!(s.partial_put_count(), 1);
        s.fail_machine(s.machine_for(token, 0));
        assert_eq!(
            s.put(Table::Deltas, b"c", token, Bytes::from_static(b"v")),
            0
        );
        assert_eq!(s.failed_put_count(), 1);
        assert_eq!(s.partial_put_count(), 1);
    }
}

//! In-house LZSS byte compression — re-exported from `hgs_delta`.
//!
//! The implementation lives in [`hgs_delta::compress`] so the columnar
//! codec (`hgs_delta::columnar`) can compress per-column segments
//! without a dependency cycle; this module keeps the store-side paths
//! (`StoreConfig::compress`, the Fig. 13a reproduction) working
//! unchanged.

pub use hgs_delta::compress::{compress, decompress, decompressed_len};

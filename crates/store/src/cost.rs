//! A deterministic latency cost model for the simulated cluster.
//!
//! Two of the paper's experimental dimensions — the number of storage
//! machines `m` and of parallel fetch clients `c` — exceed the
//! parallelism of a laptop, so wall-clock alone cannot show, e.g., the
//! c=32 curve of Fig. 11. Following the substitution rule, the
//! harnesses therefore report *both* measured wall-clock and a modelled
//! estimate computed from exact access counts. The model is a standard
//! max-of-machines makespan:
//!
//! ```text
//! t = rtt · ceil(requests / c)                 (request round trips)
//!   + max over machines(seek·lookups_m + bytes_m · byte_cost)   (server side)
//!   + client_bytes / (c · client_bw)           (deserialization, parallel over c)
//! ```
//!
//! `requests` counts client round-trips: lookups/scans grouped into a
//! batched request ([`crate::SimStore::multi_get`],
//! [`crate::SimStore::scan_prefix_batch`]) are charged one round-trip
//! per batch, while their per-key server-side seek costs remain.
//!
//! The constants were calibrated once against the paper's reported
//! absolute magnitudes (seconds for multi-million-node snapshots on a
//! small EC2 cluster) and are fixed across all experiments; only the
//! measured access counts vary.

use crate::machine::MachineStatsSnapshot;

/// Latency/bandwidth constants for the modelled cluster.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Round-trip request overhead per batch of outstanding requests
    /// (microseconds).
    pub rtt_us: f64,
    /// Per-lookup seek cost on a storage machine (microseconds): the
    /// paper's disk-backed Cassandra pays this per delta fetched.
    pub seek_us: f64,
    /// Per-byte server read + transfer cost (microseconds per byte).
    pub server_byte_us: f64,
    /// Per-byte client-side deserialization cost (microseconds per
    /// byte), parallelizable over the `c` fetch clients.
    pub client_byte_us: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            rtt_us: 900.0,         // ~1ms per request round
            seek_us: 450.0,        // sub-ms random read on Cassandra
            server_byte_us: 0.012, // ~80 MB/s per storage node
            client_byte_us: 0.020, // ~50 MB/s single-client decode
        }
    }
}

impl CostModel {
    /// Estimate the latency (in seconds) of a retrieval that produced
    /// the given per-machine access deltas, using `c` parallel fetch
    /// clients.
    ///
    /// `per_machine` must have one entry per storage machine (entries
    /// for idle machines are zero); replication failovers are already
    /// folded into whichever machine actually served the read.
    pub fn estimate_seconds(&self, per_machine: &[MachineStatsSnapshot], c: usize) -> f64 {
        self.estimate_seconds_with_latency(per_machine, c, &[])
    }

    /// [`CostModel::estimate_seconds`] with per-machine latency
    /// multipliers (one per machine; missing entries default to 1.0).
    /// A degraded machine — see
    /// [`FaultPlan::with_latency_multiplier`](crate::faults::FaultPlan::with_latency_multiplier)
    /// and [`SimStore::latency_multipliers`](crate::SimStore::latency_multipliers)
    /// — scales its *server-side* term: since the makespan takes the
    /// max over machines, one slow replica can dominate the whole
    /// retrieval, exactly the straggler effect the chaos experiments
    /// measure.
    pub fn estimate_seconds_with_latency(
        &self,
        per_machine: &[MachineStatsSnapshot],
        c: usize,
        multipliers: &[f64],
    ) -> f64 {
        let c = c.max(1) as f64;
        // Lookups/scans that travelled inside a batch share that
        // batch's round-trip: charge the batch once and subtract its
        // sub-requests from the RTT term (they still pay server-side
        // seeks below).
        let total_requests: u64 = per_machine
            .iter()
            .map(|m| m.gets + m.scans - m.batched_subrequests + m.batches)
            .sum();
        let total_bytes: u64 = per_machine.iter().map(|m| m.bytes_read).sum();

        let rounds = (total_requests as f64 / c).ceil();
        let request_us = self.rtt_us * rounds;

        let server_us = per_machine
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mult = multipliers.get(i).copied().unwrap_or(1.0).max(1.0);
                ((m.gets + m.scans) as f64 * self.seek_us
                    + m.bytes_read as f64 * self.server_byte_us)
                    * mult
            })
            .fold(0.0f64, f64::max);

        let client_us = total_bytes as f64 * self.client_byte_us / c;

        (request_us + server_us + client_us) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(gets: u64, bytes: u64) -> MachineStatsSnapshot {
        MachineStatsSnapshot {
            gets,
            scans: 0,
            batches: 0,
            batched_subrequests: 0,
            rows_read: gets,
            bytes_read: bytes,
            puts: 0,
            put_batches: 0,
            bytes_written: 0,
            retries: 0,
            breaker_opens: 0,
        }
    }

    #[test]
    fn batched_requests_share_their_round_trip() {
        let model = CostModel::default();
        // 100 individual gets vs the same 100 gets grouped into 5
        // batches: the server work is identical, but the batched plan
        // pays 5 round-trips instead of 100.
        let individual = vec![snap(100, 1_000_000)];
        let mut batched_snap = snap(100, 1_000_000);
        batched_snap.batches = 5;
        batched_snap.batched_subrequests = 100;
        let batched = vec![batched_snap];
        let t_individual = model.estimate_seconds(&individual, 1);
        let t_batched = model.estimate_seconds(&batched, 1);
        assert!(
            t_batched < t_individual,
            "batching must reduce modeled latency: {t_batched} vs {t_individual}"
        );
        let saved_rounds = (100.0 - 5.0) * model.rtt_us / 1e6;
        assert!((t_individual - t_batched - saved_rounds).abs() < 1e-9);
    }

    #[test]
    fn more_clients_is_faster() {
        let model = CostModel::default();
        let per_machine = vec![snap(100, 1_000_000), snap(100, 1_000_000)];
        let t1 = model.estimate_seconds(&per_machine, 1);
        let t4 = model.estimate_seconds(&per_machine, 4);
        let t32 = model.estimate_seconds(&per_machine, 32);
        assert!(t1 > t4 && t4 > t32);
    }

    #[test]
    fn speedup_saturates_at_server_bound() {
        // With huge c the makespan is dominated by the slowest machine;
        // adding clients cannot beat that floor.
        let model = CostModel::default();
        let per_machine = vec![snap(1000, 50_000_000)];
        let t_big = model.estimate_seconds(&per_machine, 1 << 20);
        let server_floor = (1000.0 * model.seek_us + 50_000_000.0 * model.server_byte_us) / 1e6;
        assert!(t_big >= server_floor);
        assert!(t_big < server_floor * 1.1);
    }

    #[test]
    fn spreading_over_machines_helps() {
        let model = CostModel::default();
        let one = vec![snap(200, 4_000_000)];
        let two = vec![snap(100, 2_000_000), snap(100, 2_000_000)];
        assert!(model.estimate_seconds(&two, 4) < model.estimate_seconds(&one, 4));
    }

    #[test]
    fn latency_multiplier_scales_only_the_degraded_machine() {
        let model = CostModel::default();
        let per_machine = vec![snap(100, 1_000_000), snap(100, 1_000_000)];
        let base = model.estimate_seconds(&per_machine, 4);
        let slowed = model.estimate_seconds_with_latency(&per_machine, 4, &[1.0, 3.0]);
        assert!(slowed > base, "a degraded machine slows the makespan");
        // The server-side term is the only one that scales: the delta
        // equals the slow machine's extra server time.
        let server = 100.0 * model.seek_us + 1_000_000.0 * model.server_byte_us;
        assert!((slowed - base - 2.0 * server / 1e6).abs() < 1e-9);
        // Sub-1 multipliers clamp up; missing entries default to 1.
        let same = model.estimate_seconds_with_latency(&per_machine, 4, &[0.5]);
        assert_eq!(same, base);
    }

    #[test]
    fn zero_work_is_zero_cost() {
        let model = CostModel::default();
        assert_eq!(model.estimate_seconds(&[snap(0, 0)], 8), 0.0);
    }
}

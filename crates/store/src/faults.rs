//! Deterministic chaos fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a *seeded schedule* of transient misbehaviour
//! attachable to a [`SimStore`](crate::SimStore) via
//! [`SimStore::set_fault_plan`](crate::SimStore::set_fault_plan):
//!
//! * **outage windows** — per-machine intervals of simulated time in
//!   which every request to that machine is refused (a reboot, a GC
//!   pause, a network partition that heals on its own);
//! * **flake probability** — an independent per-request chance that a
//!   single request fails even on a healthy machine (dropped packet,
//!   overloaded connection pool);
//! * **latency multipliers** — per-machine slowdown factors fed into
//!   the [`CostModel`](crate::CostModel)'s server-side term via
//!   [`SimStore::latency_multipliers`](crate::SimStore::latency_multipliers)
//!   (a degraded disk, a noisy neighbour);
//! * **corrupt-on-read** — an independent per-request chance that a
//!   read returns garbage bytes instead of the stored value (a torn
//!   page caught by the checksum, a bad NIC). The *stored* bytes are
//!   untouched — corruption happens on the wire, so a retry or another
//!   replica still sees the real row.
//!
//! Everything is a pure function of `(seed, machine, tick)`, where the
//! tick is the store's simulated clock (one tick per machine-level
//! request, plus the ticks retry backoff burns). Two runs with the
//! same plan, the same workload and the same thread interleaving make
//! identical fault decisions; no wall clock is consulted anywhere.
//!
//! Permanent machine death stays a separate mechanism
//! ([`SimStore::fail_machine`](crate::SimStore::fail_machine)): a plan
//! describes faults that *heal*, and the retry layer treats the two
//! differently — transient faults are retried and surface as
//! [`StoreError::Transient`](crate::StoreError::Transient) when the
//! attempt budget runs out, while a permanently dead replica set
//! surfaces [`StoreError::Unavailable`](crate::StoreError::Unavailable)
//! immediately.

/// Garbage injected by corrupt-on-read in place of the stored value.
/// Chosen to fail *every* decode path loudly: the LZSS container
/// rejects it as a bad opcode and the row codecs reject it as a bad
/// header — a corrupt read must surface as
/// [`StoreError::Corrupt`](crate::StoreError::Corrupt), never decode
/// by luck into a plausible answer.
pub const CORRUPT_ON_READ_MARKER: &[u8] = b"\xff\xfenot a decodable row";

/// One transient outage: `machine` refuses every request whose tick
/// falls in `[from_tick, until_tick)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    pub machine: usize,
    pub from_tick: u64,
    pub until_tick: u64,
}

/// Per-request fault decision for one `(machine, tick)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// The request proceeds normally.
    Healthy,
    /// The machine is inside a scheduled outage window; the request is
    /// refused (transient — the window ends).
    Outage,
    /// This individual request flakes; the same request a tick later
    /// may well succeed (transient).
    Flake,
    /// The request succeeds but a *read*'s returned bytes are replaced
    /// with [`CORRUPT_ON_READ_MARKER`]. Writes ignore this verdict.
    CorruptRead,
}

/// A seeded, deterministic schedule of transient faults. Build one
/// with the `with_*` methods and attach it via
/// [`SimStore::set_fault_plan`](crate::SimStore::set_fault_plan).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-request flake probability in 1/1000 units (0..=1000).
    flake_per_mille: u16,
    /// Per-read corrupt probability in 1/1000 units (0..=1000).
    corrupt_per_mille: u16,
    outages: Vec<Outage>,
    /// Per-machine modelled latency multipliers (machine, factor).
    latency: Vec<(usize, f64)>,
}

impl FaultPlan {
    /// An empty plan: no faults at all. Useful as the zero-overhead
    /// baseline when measuring the chaos machinery itself.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            flake_per_mille: 0,
            corrupt_per_mille: 0,
            outages: Vec::new(),
            latency: Vec::new(),
        }
    }

    /// Set the per-request flake probability, in 1/1000 units
    /// (clamped to 1000).
    pub fn with_flake_per_mille(mut self, per_mille: u16) -> FaultPlan {
        self.flake_per_mille = per_mille.min(1000);
        self
    }

    /// Set the per-read corrupt-on-read probability, in 1/1000 units
    /// (clamped to 1000).
    pub fn with_corrupt_per_mille(mut self, per_mille: u16) -> FaultPlan {
        self.corrupt_per_mille = per_mille.min(1000);
        self
    }

    /// Schedule a transient outage of `machine` over the simulated-time
    /// window `[from_tick, until_tick)`.
    pub fn with_outage(mut self, machine: usize, from_tick: u64, until_tick: u64) -> FaultPlan {
        self.outages.push(Outage {
            machine,
            from_tick,
            until_tick,
        });
        self
    }

    /// Set a machine's modelled latency multiplier (`>= 1.0` slows it
    /// down in the cost model; values below 1 are clamped up).
    pub fn with_latency_multiplier(mut self, machine: usize, factor: f64) -> FaultPlan {
        self.latency.push((machine, factor.max(1.0)));
        self
    }

    /// The plan's seed (decision source for flake/corrupt draws).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scheduled outage windows.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// The modelled latency multiplier of `machine` (1.0 when
    /// unspecified; repeated entries multiply).
    pub fn latency_multiplier(&self, machine: usize) -> f64 {
        self.latency
            .iter()
            .filter(|&&(m, _)| m == machine)
            .map(|&(_, f)| f)
            .product::<f64>()
            .max(1.0)
    }

    /// Whether any fault kind can ever fire (false for a zero-rate,
    /// no-outage plan — latency multipliers never fail requests).
    pub fn can_fault(&self) -> bool {
        self.flake_per_mille > 0 || self.corrupt_per_mille > 0 || !self.outages.is_empty()
    }

    /// The fault decision for one request against `machine` at
    /// simulated time `tick`. Pure: the same inputs always yield the
    /// same verdict.
    pub fn verdict(&self, machine: usize, tick: u64) -> FaultVerdict {
        if self
            .outages
            .iter()
            .any(|o| o.machine == machine && o.from_tick <= tick && tick < o.until_tick)
        {
            return FaultVerdict::Outage;
        }
        if self.flake_per_mille > 0 {
            let draw = mix(self.seed ^ 0x9e37_79b9_7f4a_7c15, machine as u64, tick) % 1000;
            if draw < u64::from(self.flake_per_mille) {
                return FaultVerdict::Flake;
            }
        }
        if self.corrupt_per_mille > 0 {
            let draw = mix(self.seed ^ 0xc2b2_ae3d_27d4_eb4f, machine as u64, tick) % 1000;
            if draw < u64::from(self.corrupt_per_mille) {
                return FaultVerdict::CorruptRead;
            }
        }
        FaultVerdict::Healthy
    }
}

/// SplitMix64-style mixer over `(stream, machine, tick)` — cheap,
/// stateless, and well-distributed enough for per-mille draws.
fn mix(stream: u64, machine: u64, tick: u64) -> u64 {
    let mut z = stream
        .wrapping_add(machine.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(tick.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_always_healthy() {
        let p = FaultPlan::new(42);
        assert!(!p.can_fault());
        for m in 0..4 {
            for t in 0..1000 {
                assert_eq!(p.verdict(m, t), FaultVerdict::Healthy);
            }
        }
    }

    #[test]
    fn outage_window_is_half_open_and_per_machine() {
        let p = FaultPlan::new(1).with_outage(2, 10, 20);
        assert_eq!(p.verdict(2, 9), FaultVerdict::Healthy);
        assert_eq!(p.verdict(2, 10), FaultVerdict::Outage);
        assert_eq!(p.verdict(2, 19), FaultVerdict::Outage);
        assert_eq!(p.verdict(2, 20), FaultVerdict::Healthy);
        assert_eq!(p.verdict(1, 15), FaultVerdict::Healthy);
    }

    #[test]
    fn verdicts_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::new(7).with_flake_per_mille(300);
        let b = FaultPlan::new(7).with_flake_per_mille(300);
        let c = FaultPlan::new(8).with_flake_per_mille(300);
        let va: Vec<_> = (0..500).map(|t| a.verdict(0, t)).collect();
        let vb: Vec<_> = (0..500).map(|t| b.verdict(0, t)).collect();
        let vc: Vec<_> = (0..500).map(|t| c.verdict(0, t)).collect();
        assert_eq!(va, vb, "same seed, same schedule");
        assert_ne!(va, vc, "different seed, different schedule");
    }

    #[test]
    fn flake_rate_is_roughly_honoured() {
        let p = FaultPlan::new(99).with_flake_per_mille(250);
        let flakes = (0..10_000)
            .filter(|&t| p.verdict(1, t) == FaultVerdict::Flake)
            .count();
        assert!(
            (1_800..3_200).contains(&flakes),
            "expected ~2500 flakes in 10k draws, got {flakes}"
        );
    }

    #[test]
    fn full_corrupt_rate_corrupts_every_read() {
        let p = FaultPlan::new(3).with_corrupt_per_mille(1000);
        for t in 0..100 {
            assert_eq!(p.verdict(0, t), FaultVerdict::CorruptRead);
        }
    }

    #[test]
    fn latency_multipliers_default_and_clamp() {
        let p = FaultPlan::new(0)
            .with_latency_multiplier(1, 3.0)
            .with_latency_multiplier(2, 0.1);
        assert_eq!(p.latency_multiplier(0), 1.0);
        assert_eq!(p.latency_multiplier(1), 3.0);
        assert_eq!(p.latency_multiplier(2), 1.0, "sub-1 factors clamp up");
    }
}

//! Parallel fetch-client helpers.
//!
//! The paper's query processors issue store requests from `c` parallel
//! clients. [`parallel_chunks`] provides that pattern for any workload:
//! split the request list into `c` contiguous chunks, run each chunk on
//! its own OS thread, and splice the per-chunk results back in order.
//! On a multi-core host this yields real speedups for
//! deserialization-heavy fetches; for `c` beyond the core count the
//! cost model (see [`crate::cost`]) supplies the cluster-shaped
//! estimate.

/// Run `f` over `items` split into at most `c` contiguous chunks, each
/// chunk on its own thread; results are concatenated in input order.
///
/// `c == 1` (or one chunk's worth of items) runs inline with no thread
/// spawn.
pub fn parallel_chunks<T, R, F>(items: Vec<T>, c: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> Vec<R> + Sync,
{
    let c = c.max(1);
    if c == 1 || items.len() <= 1 {
        return f(items);
    }
    let n = items.len();
    let chunk = n.div_ceil(c);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(c);
    let mut it = items.into_iter();
    loop {
        let piece: Vec<T> = it.by_ref().take(chunk).collect();
        if piece.is_empty() {
            break;
        }
        chunks.push(piece);
    }

    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|piece| s.spawn(move || f(piece)))
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel fetch worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Run `jobs` (independent closures) on up to `c` threads, returning
/// outputs in job order. Used where per-job work is coarse (e.g. one
/// job per horizontal partition).
pub fn parallel_jobs<R, F>(jobs: Vec<F>, c: usize) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let c = c.max(1);
    if c == 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    // Round-robin assignment keeps job order recoverable by index.
    let n = jobs.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let indexed: Vec<(usize, F)> = jobs.into_iter().enumerate().collect();
    let buckets: Vec<Vec<(usize, F)>> = {
        let mut b: Vec<Vec<(usize, F)>> = (0..c.min(n)).map(|_| Vec::new()).collect();
        for (i, (idx, job)) in indexed.into_iter().enumerate() {
            b[i % c.min(n)].push((idx, job));
        }
        b
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(idx, job)| (idx, job()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (idx, r) in h.join().expect("parallel job worker panicked") {
                slots[idx] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("missing job result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_preserve_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_chunks(items.clone(), 4, |chunk| {
            chunk.into_iter().map(|x| x * 2).collect()
        });
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_client_runs_inline() {
        let out = parallel_chunks(vec![1, 2, 3], 1, |c| c);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_chunks(Vec::<i32>::new(), 8, |c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn more_clients_than_items() {
        let out = parallel_chunks(vec![5], 16, |c| c);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn jobs_run_all_and_order() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = parallel_jobs(jobs, 3);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }
}

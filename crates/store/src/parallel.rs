//! Parallel fetch-client helpers.
//!
//! The paper's query processors issue store requests from `c` parallel
//! clients. [`parallel_chunks`] provides that pattern for any workload:
//! split the request list into `c` contiguous chunks, run each chunk on
//! its own OS thread, and splice the per-chunk results back in order.
//! On a multi-core host this yields real speedups for
//! deserialization-heavy fetches; for `c` beyond the core count the
//! cost model (see [`crate::cost`]) supplies the cluster-shaped
//! estimate.
//!
//! [`parallel_steal`] replaces the static split with a shared work
//! queue: workers pull the next pending item as soon as they finish
//! their current one, so a skewed item distribution (hot partitions,
//! fat leaves) no longer gates the whole batch on the unluckiest
//! chunk. Output order stays deterministic — every item writes its
//! result into its own input-indexed slot.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Run `f` over `items` split into at most `c` contiguous chunks, each
/// chunk on its own thread; results are concatenated in input order.
///
/// `c == 1` (or one chunk's worth of items) runs inline with no thread
/// spawn.
pub fn parallel_chunks<T, R, F>(items: Vec<T>, c: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> Vec<R> + Sync,
{
    let c = c.max(1);
    if c == 1 || items.len() <= 1 {
        return f(items);
    }
    let n = items.len();
    let chunk = n.div_ceil(c);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(c);
    let mut it = items.into_iter();
    loop {
        let piece: Vec<T> = it.by_ref().take(chunk).collect();
        if piece.is_empty() {
            break;
        }
        chunks.push(piece);
    }

    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|piece| s.spawn(move || f(piece)))
            .collect();
        for h in handles {
            // hgs-lint: allow(no-panic-in-try, "re-raises a worker panic on the caller's thread; no error to surface")
            results.push(h.join().expect("parallel fetch worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Run `jobs` (independent closures) on up to `c` threads, returning
/// outputs in job order. Used where per-job work is coarse (e.g. one
/// job per horizontal partition).
pub fn parallel_jobs<R, F>(jobs: Vec<F>, c: usize) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let c = c.max(1);
    if c == 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    // Round-robin assignment keeps job order recoverable by index.
    let n = jobs.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let indexed: Vec<(usize, F)> = jobs.into_iter().enumerate().collect();
    let buckets: Vec<Vec<(usize, F)>> = {
        let mut b: Vec<Vec<(usize, F)>> = (0..c.min(n)).map(|_| Vec::new()).collect();
        for (i, (idx, job)) in indexed.into_iter().enumerate() {
            b[i % c.min(n)].push((idx, job));
        }
        b
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(idx, job)| (idx, job()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // hgs-lint: allow(no-panic-in-try, "re-raises a worker panic on the caller's thread; no error to surface")
            for (idx, r) in h.join().expect("parallel job worker panicked") {
                slots[idx] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        // hgs-lint: allow(no-panic-in-try, "round-robin assignment covers every index exactly once")
        .map(|r| r.expect("missing job result"))
        .collect()
}

/// Number of worker threads [`parallel_steal`] actually uses for `c`
/// requested clients over `items` work items: the fan-out is clamped
/// to the item count, so a degenerate batch (e.g. a single-point
/// snapshot with one `(sid, leaf)` item) never spawns idle threads.
#[inline]
pub fn steal_worker_count(c: usize, items: usize) -> usize {
    c.max(1).min(items.max(1))
}

/// Run `f` over every item on up to `c` worker threads pulling from a
/// shared queue (work-stealing by next-item claim): a worker that
/// finishes a cheap item immediately claims the next pending one, so
/// one slow item delays only its own thread, not a statically-assigned
/// chunk of followers. Results land in input order.
///
/// The fan-out is clamped to the item count
/// ([`steal_worker_count`]); one effective worker (or `c == 1`, or a
/// single item) runs inline with no thread spawn.
pub fn parallel_steal<T, R, F>(items: Vec<T>, c: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = steal_worker_count(c, items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let (queue, slots, next, f) = (&queue, &slots, &next, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = queue[i]
                    .lock()
                    .take()
                    // hgs-lint: allow(no-panic-in-try, "fetch_add hands out each queue index exactly once")
                    .expect("each item is claimed exactly once");
                let r = f(item);
                *slots[i].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        // hgs-lint: allow(no-panic-in-try, "scope() joined all workers, so every slot was written")
        .map(|m| m.into_inner().expect("every claimed item wrote its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_preserve_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_chunks(items.clone(), 4, |chunk| {
            chunk.into_iter().map(|x| x * 2).collect()
        });
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_client_runs_inline() {
        let out = parallel_chunks(vec![1, 2, 3], 1, |c| c);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_chunks(Vec::<i32>::new(), 8, |c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn more_clients_than_items() {
        let out = parallel_chunks(vec![5], 16, |c| c);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn steal_preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_steal(items.clone(), 4, |x| x * 3);
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn steal_worker_count_clamps_to_items() {
        assert_eq!(steal_worker_count(8, 1), 1);
        assert_eq!(steal_worker_count(8, 3), 3);
        assert_eq!(steal_worker_count(2, 100), 2);
        assert_eq!(steal_worker_count(0, 5), 1, "c=0 treated as 1");
        assert_eq!(steal_worker_count(4, 0), 1, "empty batch still valid");
    }

    /// A degenerate batch (one item) must run inline on the caller's
    /// thread — `clients` threads for one `(sid, leaf)` item would be
    /// pure overhead.
    #[test]
    fn steal_single_item_runs_inline() {
        let caller = std::thread::current().id();
        let out = parallel_steal(vec![7u64], 16, |x| (x + 1, std::thread::current().id()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 8);
        assert_eq!(out[0].1, caller, "single work item must not spawn");
        let empty: Vec<u64> = parallel_steal(Vec::<u64>::new(), 8, |x| x);
        assert!(empty.is_empty());
    }

    /// Dynamic claim: a slow head item must not serialize the rest
    /// behind it the way a contiguous chunk split would.
    #[test]
    fn steal_drains_queue_past_a_slow_item() {
        let done = AtomicUsize::new(0);
        let out = parallel_steal((0..16usize).collect(), 4, |i| {
            if i == 0 {
                // Head item is slow; other workers keep claiming.
                while done.load(Ordering::SeqCst) < 12 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            i * i
        });
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(done.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn jobs_run_all_and_order() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = parallel_jobs(jobs, 3);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }
}

//! # hgs-store — a simulated distributed key-value store
//!
//! TGI (the paper's index, crate `hgs-core`) stores its deltas in
//! Apache Cassandra. This crate provides an in-process substitute,
//! [`SimStore`], that preserves every property the paper's evaluation
//! depends on:
//!
//! * **m machines** holding ordered key spaces (Cassandra's clustering:
//!   rows sharing a *placement key* live contiguously on one machine
//!   and can be range-scanned cheaply);
//! * **placement keys** `{tsid, sid}` mapping chunks of the index onto
//!   machines, with **replication factor r** (a chunk lives on `r`
//!   consecutive machines of the ring);
//! * **composite delta keys** `{tsid, sid, did, pid}` whose byte
//!   encoding preserves tuple order, so all micro-partitions of one
//!   delta are stored contiguously (§4.4 point 5 of the paper);
//! * optional **value compression** (in-house LZSS; paper Fig. 13a);
//! * **per-machine accounting** (lookups, scans, bytes) feeding a
//!   [`CostModel`] that turns access counts into estimated cluster
//!   latencies — this is how the benches reproduce cluster-shaped
//!   results (m, r, c sweeps) on a laptop;
//! * **parallel fetch clients** (`c` in the paper): real OS threads
//!   issuing requests concurrently via [`parallel::parallel_chunks`];
//! * **failure injection**: permanent machine death with replica
//!   failover, plus a seeded deterministic chaos layer
//!   ([`faults::FaultPlan`]: transient outage windows, per-request
//!   flakes, corrupt-on-read, latency multipliers) that every
//!   operation survives through a bounded [`retry::RetryPolicy`]
//!   (capped backoff in simulated time, per-machine circuit breakers)
//!   and an anti-entropy repair pass ([`SimStore::try_repair`]).

pub mod compress;
pub mod cost;
pub mod faults;
pub mod key;
pub mod machine;
pub mod parallel;
pub mod retry;
pub mod store;
pub mod write;

pub use compress::{compress, decompress};
pub use cost::CostModel;
pub use faults::{FaultPlan, FaultVerdict, Outage, CORRUPT_ON_READ_MARKER};
pub use key::{DeltaKey, PlacementKey, Table};
pub use machine::{Machine, MachineDown, MachineStats};
pub use retry::RetryPolicy;
pub use store::{
    BatchPutOutcome, PutRow, RepairReport, SimStore, StoreConfig, StoreError, StoreStatsSnapshot,
};
pub use write::WriteBuffer;

//! A single simulated storage machine: an ordered key space plus
//! access accounting.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

/// Monotonic access counters for one machine. All counters are
/// process-lifetime totals; [`MachineStats::snapshot`] and subtraction
/// of snapshots give per-experiment figures.
#[derive(Debug, Default)]
pub struct MachineStats {
    /// Point lookups served.
    pub gets: AtomicU64,
    /// Range scans served.
    pub scans: AtomicU64,
    /// Batched requests served (one batch = one client round-trip
    /// regardless of how many keys/prefixes it groups).
    pub batches: AtomicU64,
    /// Individual lookups/scans that arrived inside a batch (also
    /// counted in `gets`/`scans`, preserving `∑∆ 1` semantics; the
    /// cost model subtracts these and charges the batch one
    /// round-trip instead).
    pub batched_subrequests: AtomicU64,
    /// Values returned (scan rows + successful gets).
    pub rows_read: AtomicU64,
    /// Bytes of value data returned (stored, i.e. possibly compressed,
    /// size — what would travel over the wire).
    pub bytes_read: AtomicU64,
    /// Writes applied.
    pub puts: AtomicU64,
    /// Batched write requests served (one write batch = one client
    /// round-trip regardless of how many rows it carries — the
    /// write-side mirror of `batches`). Rows arriving inside a batch
    /// are still counted in `puts`, preserving `∑∆ 1` semantics.
    pub put_batches: AtomicU64,
    /// Bytes of value data written.
    pub bytes_written: AtomicU64,
}

/// A plain-old-data copy of [`MachineStats`], plus the store-level
/// retry/breaker counters (`retries`, `breaker_opens`): those live in
/// the `SimStore`'s per-machine circuit breakers, not on the machine
/// itself, and are folded in by `SimStore::stats_snapshot` — a
/// machine-level snapshot reports them as zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStatsSnapshot {
    pub gets: u64,
    pub scans: u64,
    pub batches: u64,
    pub batched_subrequests: u64,
    pub rows_read: u64,
    pub bytes_read: u64,
    pub puts: u64,
    pub put_batches: u64,
    pub bytes_written: u64,
    /// Requests re-issued to this machine by the retry layer (attempts
    /// beyond the first of a logical operation).
    pub retries: u64,
    /// Times this machine's circuit breaker transitioned open.
    pub breaker_opens: u64,
}

impl MachineStatsSnapshot {
    /// Counter-wise difference (`self - earlier`), for bracketing an
    /// experiment.
    pub fn since(&self, earlier: &MachineStatsSnapshot) -> MachineStatsSnapshot {
        MachineStatsSnapshot {
            gets: self.gets - earlier.gets,
            scans: self.scans - earlier.scans,
            batches: self.batches - earlier.batches,
            batched_subrequests: self.batched_subrequests - earlier.batched_subrequests,
            rows_read: self.rows_read - earlier.rows_read,
            bytes_read: self.bytes_read - earlier.bytes_read,
            puts: self.puts - earlier.puts,
            put_batches: self.put_batches - earlier.put_batches,
            bytes_written: self.bytes_written - earlier.bytes_written,
            retries: self.retries - earlier.retries,
            breaker_opens: self.breaker_opens - earlier.breaker_opens,
        }
    }

    /// Sum with another snapshot.
    pub fn merge(&self, other: &MachineStatsSnapshot) -> MachineStatsSnapshot {
        MachineStatsSnapshot {
            gets: self.gets + other.gets,
            scans: self.scans + other.scans,
            batches: self.batches + other.batches,
            batched_subrequests: self.batched_subrequests + other.batched_subrequests,
            rows_read: self.rows_read + other.rows_read,
            bytes_read: self.bytes_read + other.bytes_read,
            puts: self.puts + other.puts,
            put_batches: self.put_batches + other.put_batches,
            bytes_written: self.bytes_written + other.bytes_written,
            retries: self.retries + other.retries,
            breaker_opens: self.breaker_opens + other.breaker_opens,
        }
    }
}

impl MachineStats {
    pub fn snapshot(&self) -> MachineStatsSnapshot {
        MachineStatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_subrequests: self.batched_subrequests.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            put_batches: self.put_batches.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            // Folded in at the store layer; see the snapshot struct's
            // doc comment.
            retries: 0,
            breaker_opens: 0,
        }
    }
}

/// Error returned by reads against a machine that is currently failed
/// (see [`Machine::set_down`]); the store retries the next replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineDown;

/// Rows returned by a prefix scan: `(namespaced key, value)` pairs.
pub type ScanRows = Vec<(Vec<u8>, Bytes)>;

/// One storage machine: an ordered map from namespaced keys to values.
///
/// Keys are `[table_tag] ++ key_bytes`; because the map is ordered,
/// rows sharing a key prefix are contiguous, reproducing Cassandra's
/// clustering behaviour that TGI's layout exploits.
pub struct Machine {
    data: RwLock<BTreeMap<Vec<u8>, Bytes>>,
    stats: MachineStats,
    down: AtomicBool,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    pub fn new() -> Machine {
        Machine {
            data: RwLock::new(BTreeMap::new()),
            stats: MachineStats::default(),
            down: AtomicBool::new(false),
        }
    }

    /// Access counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Failure injection: a down machine refuses reads and writes.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Whether the machine is marked failed.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.data.read().len()
    }

    /// Total stored value bytes.
    pub fn stored_bytes(&self) -> usize {
        self.data.read().values().map(|v| v.len()).sum()
    }

    /// Insert a row. Returns `false` if the machine is down.
    pub fn put(&self, key: Vec<u8>, value: Bytes) -> bool {
        if self.is_down() {
            return false;
        }
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        self.data.write().insert(key, value);
        true
    }

    /// Insert a batch of rows under one lock acquisition, accounted as
    /// a single write round-trip (`put_batches += 1`) plus one logical
    /// put per row, mirroring [`Machine::multi_get`]'s read-side
    /// semantics. A down machine refuses the whole batch atomically —
    /// either every row lands or none does.
    pub fn put_batch(&self, rows: Vec<(Vec<u8>, Bytes)>) -> Result<(), MachineDown> {
        if self.is_down() {
            return Err(MachineDown);
        }
        self.stats.put_batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .puts
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(
            rows.iter().map(|(_, v)| v.len() as u64).sum::<u64>(),
            Ordering::Relaxed,
        );
        let mut guard = self.data.write();
        for (k, v) in rows {
            guard.insert(k, v);
        }
        Ok(())
    }

    /// Full ordered content dump (namespaced keys, stored values) —
    /// an out-of-band inspection for equality tests, served even when
    /// the machine is marked down and not counted in the stats.
    pub fn dump_rows(&self) -> ScanRows {
        self.data
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Remove a row.
    pub fn delete(&self, key: &[u8]) -> bool {
        if self.is_down() {
            return false;
        }
        self.data.write().remove(key).is_some()
    }

    /// Point lookup. `Err(MachineDown)` when the machine is down,
    /// `Ok(None)` when absent.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>, MachineDown> {
        if self.is_down() {
            return Err(MachineDown);
        }
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let guard = self.data.read();
        let out = guard.get(key).cloned();
        if let Some(v) = &out {
            self.stats.rows_read.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_read
                .fetch_add(v.len() as u64, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Ordered prefix scan; returns `(key, value)` pairs whose key
    /// starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<ScanRows, MachineDown> {
        if self.is_down() {
            return Err(MachineDown);
        }
        self.stats.scans.fetch_add(1, Ordering::Relaxed);
        let guard = self.data.read();
        Ok(self.scan_locked(&guard, prefix))
    }

    /// Batched point lookups: all keys answered under one lock
    /// acquisition, accounted as a single batch round-trip (plus one
    /// logical get per key, preserving `∑∆ 1` semantics).
    pub fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Bytes>>, MachineDown> {
        if self.is_down() {
            return Err(MachineDown);
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .gets
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.stats
            .batched_subrequests
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let guard = self.data.read();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let v = guard.get(k).cloned();
            if let Some(v) = &v {
                self.stats.rows_read.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(v.len() as u64, Ordering::Relaxed);
            }
            out.push(v);
        }
        Ok(out)
    }

    /// Batched prefix scans: one result group per prefix, all served
    /// under one lock acquisition and accounted as one batch
    /// round-trip (plus one logical scan per prefix).
    pub fn scan_prefixes(&self, prefixes: &[Vec<u8>]) -> Result<Vec<ScanRows>, MachineDown> {
        if self.is_down() {
            return Err(MachineDown);
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .scans
            .fetch_add(prefixes.len() as u64, Ordering::Relaxed);
        self.stats
            .batched_subrequests
            .fetch_add(prefixes.len() as u64, Ordering::Relaxed);
        let guard = self.data.read();
        Ok(prefixes
            .iter()
            .map(|p| self.scan_locked(&guard, p))
            .collect())
    }

    fn scan_locked(
        &self,
        guard: &BTreeMap<Vec<u8>, Bytes>,
        prefix: &[u8],
    ) -> Vec<(Vec<u8>, Bytes)> {
        let mut out = Vec::new();
        let range =
            guard.range::<Vec<u8>, _>((Bound::Included(&prefix.to_vec()), Bound::Unbounded));
        for (k, v) in range {
            if !k.starts_with(prefix) {
                break;
            }
            self.stats.rows_read.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_read
                .fetch_add(v.len() as u64, Ordering::Relaxed);
            out.push((k.clone(), v.clone()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(table: u8, rest: &[u8]) -> Vec<u8> {
        let mut k = vec![table];
        k.extend_from_slice(rest);
        k
    }

    #[test]
    fn put_get_delete() {
        let m = Machine::new();
        assert!(m.put(key(0, b"a"), Bytes::from_static(b"v1")));
        assert_eq!(m.get(&key(0, b"a")).unwrap().as_deref(), Some(&b"v1"[..]));
        assert!(m.delete(&key(0, b"a")));
        assert_eq!(m.get(&key(0, b"a")).unwrap(), None);
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let m = Machine::new();
        m.put(key(0, b"ab1"), Bytes::from_static(b"1"));
        m.put(key(0, b"ab2"), Bytes::from_static(b"2"));
        m.put(key(0, b"ac3"), Bytes::from_static(b"3"));
        m.put(key(1, b"ab9"), Bytes::from_static(b"9"));
        let rows = m.scan_prefix(&key(0, b"ab")).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].0 < rows[1].0);
    }

    #[test]
    fn down_machine_refuses() {
        let m = Machine::new();
        m.put(key(0, b"a"), Bytes::from_static(b"v"));
        m.set_down(true);
        assert!(m.get(&key(0, b"a")).is_err());
        assert!(m.scan_prefix(&key(0, b"a")).is_err());
        assert!(!m.put(key(0, b"b"), Bytes::from_static(b"v")));
        m.set_down(false);
        assert!(m.get(&key(0, b"a")).is_ok());
    }

    #[test]
    fn multi_get_counts_one_batch() {
        let m = Machine::new();
        m.put(key(0, b"a"), Bytes::from_static(b"1"));
        m.put(key(0, b"b"), Bytes::from_static(b"22"));
        let before = m.stats().snapshot();
        let got = m
            .multi_get(&[key(0, b"a"), key(0, b"missing"), key(0, b"b")])
            .unwrap();
        assert_eq!(
            got.iter().map(|v| v.is_some()).collect::<Vec<_>>(),
            vec![true, false, true]
        );
        let diff = m.stats().snapshot().since(&before);
        assert_eq!(diff.batches, 1);
        assert_eq!(diff.gets, 3);
        assert_eq!(diff.rows_read, 2);
        assert_eq!(diff.bytes_read, 3);
    }

    #[test]
    fn scan_prefixes_groups_per_prefix() {
        let m = Machine::new();
        m.put(key(0, b"aa1"), Bytes::from_static(b"1"));
        m.put(key(0, b"aa2"), Bytes::from_static(b"2"));
        m.put(key(0, b"bb1"), Bytes::from_static(b"3"));
        let before = m.stats().snapshot();
        let groups = m
            .scan_prefixes(&[key(0, b"aa"), key(0, b"zz"), key(0, b"bb")])
            .unwrap();
        assert_eq!(
            groups.iter().map(|g| g.len()).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
        let diff = m.stats().snapshot().since(&before);
        assert_eq!(diff.batches, 1);
        assert_eq!(diff.scans, 3);
        assert_eq!(diff.rows_read, 3);
        m.set_down(true);
        assert!(m.scan_prefixes(&[key(0, b"aa")]).is_err());
        assert!(m.multi_get(&[key(0, b"aa1")]).is_err());
    }

    #[test]
    fn put_batch_counts_one_round_trip_and_refuses_when_down() {
        let m = Machine::new();
        let before = m.stats().snapshot();
        m.put_batch(vec![
            (key(0, b"a"), Bytes::from_static(b"1")),
            (key(0, b"b"), Bytes::from_static(b"22")),
            (key(1, b"c"), Bytes::from_static(b"333")),
        ])
        .unwrap();
        let diff = m.stats().snapshot().since(&before);
        assert_eq!(diff.put_batches, 1);
        assert_eq!(diff.puts, 3);
        assert_eq!(diff.bytes_written, 6);
        assert_eq!(m.get(&key(0, b"b")).unwrap().as_deref(), Some(&b"22"[..]));
        m.set_down(true);
        assert!(m
            .put_batch(vec![(key(0, b"z"), Bytes::from_static(b"v"))])
            .is_err());
        assert_eq!(m.dump_rows().len(), 3, "down batch must not land rows");
    }

    #[test]
    fn dump_rows_returns_ordered_content() {
        let m = Machine::new();
        m.put(key(0, b"b"), Bytes::from_static(b"2"));
        m.put(key(0, b"a"), Bytes::from_static(b"1"));
        let rows = m.dump_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].0 < rows[1].0);
        m.set_down(true);
        assert_eq!(m.dump_rows().len(), 2, "dump is out-of-band");
    }

    #[test]
    fn stats_track_reads() {
        let m = Machine::new();
        m.put(key(0, b"a"), Bytes::from_static(b"hello"));
        let before = m.stats().snapshot();
        m.get(&key(0, b"a")).unwrap();
        m.get(&key(0, b"zzz")).unwrap();
        let after = m.stats().snapshot().since(&before);
        assert_eq!(after.gets, 2);
        assert_eq!(after.rows_read, 1);
        assert_eq!(after.bytes_read, 5);
    }
}

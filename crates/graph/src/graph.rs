//! Dense, immutable snapshot graph built from a delta.

use hgs_delta::{Delta, EdgeDir, FxHashMap, NodeId, StaticNode};

/// An immutable snapshot graph with dense vertex indexing.
///
/// Construction consumes a [`Delta`] (a graph state); the original
/// node descriptions, including attributes, stay reachable through
/// [`Graph::node`]. Two adjacency views are kept:
///
/// * `neighbors` — the undirected view (all edges, any direction),
///   used by clustering/components/betweenness;
/// * `out` — out-edges only (`Out` and `Both` entries), used by
///   PageRank and directed traversals.
pub struct Graph {
    ids: Vec<NodeId>,
    index: FxHashMap<NodeId, u32>,
    nodes: Vec<StaticNode>,
    neighbors: Vec<Vec<u32>>,
    out: Vec<Vec<u32>>,
    edge_count: usize,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.ids.len())
            .field("edges", &self.edge_count)
            .finish()
    }
}

impl Graph {
    /// Build from a graph state. `O(V + E log E)`.
    pub fn from_delta(delta: Delta) -> Graph {
        let mut ids: Vec<NodeId> = delta.ids().collect();
        ids.sort_unstable();
        let mut index = FxHashMap::default();
        index.reserve(ids.len());
        for (i, id) in ids.iter().enumerate() {
            index.insert(*id, i as u32);
        }
        let map = delta.into_nodes();
        let mut nodes = Vec::with_capacity(ids.len());
        let mut neighbors = Vec::with_capacity(ids.len());
        let mut out = Vec::with_capacity(ids.len());
        let mut half_edges = 0usize;
        let mut map = map;
        for id in &ids {
            let n = map.remove(id).expect("id came from the same delta");
            let mut und: Vec<u32> = Vec::with_capacity(n.edges.len());
            let mut o: Vec<u32> = Vec::new();
            for e in &n.edges {
                // Edges may reference endpoints outside this delta when
                // the graph was restricted to a partition; skip those.
                let Some(&j) = index.get(&e.nbr) else {
                    continue;
                };
                und.push(j);
                if matches!(e.dir, EdgeDir::Out | EdgeDir::Both) {
                    o.push(j);
                }
                half_edges += 1;
            }
            // `StaticNode` keeps its edge-list sorted by `(nbr, dir)`,
            // which would make adjacent-only dedup sufficient — but
            // that invariant lives in another crate, so sort here
            // rather than silently emitting duplicate neighbors (and
            // corrupting degree-based algorithms) if it ever slips.
            // The out view needs it even on well-formed input: a node
            // can legitimately hold both an `Out` and a `Both` entry
            // toward the same neighbor, which are two out-edges to
            // one target.
            und.sort_unstable();
            und.dedup();
            o.sort_unstable();
            o.dedup();
            neighbors.push(und);
            out.push(o);
            nodes.push(n);
        }
        Graph {
            ids,
            index,
            nodes,
            neighbors,
            out,
            edge_count: half_edges / 2,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges (each edge counted once).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Dense index of a node-id.
    #[inline]
    pub fn idx(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Node-id at a dense index.
    #[inline]
    pub fn id(&self, idx: u32) -> NodeId {
        self.ids[idx as usize]
    }

    /// All node-ids, sorted.
    #[inline]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Full node description (attributes included) by id.
    pub fn node(&self, id: NodeId) -> Option<&StaticNode> {
        self.idx(id).map(|i| &self.nodes[i as usize])
    }

    /// Node description by dense index.
    #[inline]
    pub fn node_at(&self, idx: u32) -> &StaticNode {
        &self.nodes[idx as usize]
    }

    /// Undirected neighbor indices of a dense index (sorted, deduped).
    #[inline]
    pub fn neighbors(&self, idx: u32) -> &[u32] {
        &self.neighbors[idx as usize]
    }

    /// Out-neighbor indices (directed view).
    #[inline]
    pub fn out_neighbors(&self, idx: u32) -> &[u32] {
        &self.out[idx as usize]
    }

    /// Undirected degree of a dense index.
    #[inline]
    pub fn degree(&self, idx: u32) -> usize {
        self.neighbors[idx as usize].len()
    }

    /// Whether an undirected edge exists between two dense indices.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors[a as usize].binary_search(&b).is_ok()
    }

    /// Iterate `(dense index, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &StaticNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (i as u32, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::EventKind;

    fn triangle_plus_tail() -> Graph {
        // 1-2-3 triangle, 3-4 tail
        let mut d = Delta::new();
        for (s, t) in [(1, 2), (2, 3), (1, 3), (3, 4)] {
            d.apply_event(&EventKind::AddEdge {
                src: s,
                dst: t,
                weight: 1.0,
                directed: false,
            });
        }
        Graph::from_delta(d)
    }

    #[test]
    fn counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    /// Regression: a node holding several edge entries toward the same
    /// neighbor (one per direction) must collapse to one undirected
    /// adjacency entry — duplicates would inflate degree-based
    /// algorithms.
    #[test]
    fn duplicate_direction_entries_dedup_in_adjacency() {
        use hgs_delta::{EdgeDir, Neighbor, StaticNode};
        let mut d = Delta::new();
        let mut a = StaticNode::new(1);
        a.insert_edge(Neighbor::new(2, EdgeDir::In));
        a.insert_edge(Neighbor::new(2, EdgeDir::Out));
        a.insert_edge(Neighbor::new(3, EdgeDir::Both));
        let mut b = StaticNode::new(2);
        b.insert_edge(Neighbor::new(1, EdgeDir::Out));
        b.insert_edge(Neighbor::new(1, EdgeDir::In));
        d.insert(a);
        d.insert(b);
        d.insert(StaticNode::new(3));
        let g = Graph::from_delta(d);
        let i1 = g.idx(1).unwrap();
        let i2 = g.idx(2).unwrap();
        assert_eq!(
            g.neighbors(i1),
            &[i2.min(g.idx(3).unwrap()), i2.max(g.idx(3).unwrap())]
        );
        assert_eq!(g.neighbors(i2), &[i1]);
        for (i, _) in g.iter() {
            let ns = g.neighbors(i);
            assert!(
                ns.windows(2).all(|w| w[0] < w[1]),
                "sorted, unique adjacency"
            );
        }
    }

    /// The directed (out) view dedups too: `Out` + `Both` entries
    /// toward one neighbor are two out-edges to a single target, and
    /// listing it twice would skew PageRank-style weight splitting.
    #[test]
    fn out_and_both_entries_dedup_in_out_adjacency() {
        use hgs_delta::{EdgeDir, Neighbor, StaticNode};
        let mut d = Delta::new();
        let mut a = StaticNode::new(1);
        a.insert_edge(Neighbor::new(2, EdgeDir::Out));
        a.insert_edge(Neighbor::new(2, EdgeDir::Both));
        d.insert(a);
        d.insert(StaticNode::new(2));
        let g = Graph::from_delta(d);
        let i1 = g.idx(1).unwrap();
        let i2 = g.idx(2).unwrap();
        assert_eq!(g.out_neighbors(i1), &[i2], "out view lists 2 once");
        assert_eq!(g.neighbors(i1), &[i2]);
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let g = triangle_plus_tail();
        for (i, _) in g.iter() {
            let ns = g.neighbors(i);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &j in ns {
                assert!(g.has_edge(j, i), "symmetry");
            }
        }
    }

    #[test]
    fn degrees() {
        let g = triangle_plus_tail();
        let d3 = g.degree(g.idx(3).unwrap());
        let d4 = g.degree(g.idx(4).unwrap());
        assert_eq!(d3, 3);
        assert_eq!(d4, 1);
    }

    #[test]
    fn directed_out_view() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 2,
            weight: 1.0,
            directed: true,
        });
        let g = Graph::from_delta(d);
        let i1 = g.idx(1).unwrap();
        let i2 = g.idx(2).unwrap();
        assert_eq!(g.out_neighbors(i1), &[i2]);
        assert!(g.out_neighbors(i2).is_empty());
        // undirected view still links both
        assert!(g.has_edge(i1, i2) && g.has_edge(i2, i1));
    }

    #[test]
    fn dangling_partition_edges_skipped() {
        // Node 1 lists neighbor 99 which is not in the delta (restricted
        // partition); the graph must not panic and must skip it.
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 99,
            weight: 1.0,
            directed: false,
        });
        let restricted = d.restrict(|id| id == 1);
        let g = Graph::from_delta(restricted);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn attributes_survive() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddNode { id: 5 });
        d.apply_event(&EventKind::SetNodeAttr {
            id: 5,
            key: "label".into(),
            value: "X".into(),
        });
        let g = Graph::from_delta(d);
        assert_eq!(
            g.node(5)
                .unwrap()
                .attrs
                .get("label")
                .and_then(|v| v.as_text()),
            Some("X")
        );
    }
}

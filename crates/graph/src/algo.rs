//! Graph algorithms over [`Graph`] snapshots.
//!
//! These are the "vast body of existing tools in network science" the
//! paper's TAF plugs into: every metric referenced in the paper's
//! Figure 1 taxonomy and used by its evaluation (local clustering
//! coefficient, density, degree evolution, centrality, shortest paths,
//! community-style statistics) is implemented here.

use crate::graph::Graph;
use hgs_delta::{FxHashMap, NodeId};
use std::collections::VecDeque;

/// Graph density: `2|E| / (|V|(|V|-1))` for undirected simple graphs.
/// Returns 0 for graphs with fewer than two nodes.
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count() as f64;
    if n < 2.0 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / (n * (n - 1.0))
}

/// Mean undirected degree.
pub fn average_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / g.node_count() as f64
}

/// Degree distribution histogram: `hist[d]` = number of nodes with
/// degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for (i, _) in g.iter() {
        let d = g.degree(i);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Number of triangles incident to dense index `v`.
pub fn triangles_at(g: &Graph, v: u32) -> usize {
    let ns = g.neighbors(v);
    let mut count = 0;
    for (a_pos, &a) in ns.iter().enumerate() {
        for &b in &ns[a_pos + 1..] {
            if g.has_edge(a, b) {
                count += 1;
            }
        }
    }
    count
}

/// Local clustering coefficient of dense index `v`:
/// `2·triangles / (deg·(deg−1))`; zero for degree < 2.
pub fn local_clustering(g: &Graph, v: u32) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    2.0 * triangles_at(g, v) as f64 / (d as f64 * (d as f64 - 1.0))
}

/// Local clustering coefficient for every node; the workload of the
/// paper's Fig. 15c TAF experiment.
pub fn local_clustering_all(g: &Graph) -> Vec<(NodeId, f64)> {
    (0..g.node_count() as u32)
        .map(|i| (g.id(i), local_clustering(g, i)))
        .collect()
}

/// Average clustering coefficient.
pub fn average_clustering(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    let total: f64 = (0..g.node_count() as u32)
        .map(|i| local_clustering(g, i))
        .sum();
    total / g.node_count() as f64
}

/// Total number of triangles in the graph.
pub fn triangle_count(g: &Graph) -> usize {
    let per_node: usize = (0..g.node_count() as u32).map(|i| triangles_at(g, i)).sum();
    per_node / 3
}

/// BFS distances (in hops) from `src`; `usize::MAX` marks unreachable.
pub fn bfs_distances(g: &Graph, src: u32) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Length of the shortest path between two node-ids, in hops.
pub fn shortest_path_len(g: &Graph, a: NodeId, b: NodeId) -> Option<usize> {
    let (ia, ib) = (g.idx(a)?, g.idx(b)?);
    let d = bfs_distances(g, ia)[ib as usize];
    (d != usize::MAX).then_some(d)
}

/// Connected components (undirected). Returns `(component_id per dense
/// index, component count)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut q = VecDeque::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// PageRank over the directed view (out-edges); dangling mass is
/// redistributed uniformly. Returns scores aligned with dense indices.
pub fn pagerank(g: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let n_f = n as f64;
    let mut rank = vec![1.0 / n_f; n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for (u, &r) in rank.iter().enumerate() {
            let outs = g.out_neighbors(u as u32);
            if outs.is_empty() {
                dangling += r;
            } else {
                let share = r / outs.len() as f64;
                for &v in outs {
                    next[v as usize] += share;
                }
            }
        }
        let base = (1.0 - damping) / n_f + damping * dangling / n_f;
        for x in next.iter_mut() {
            *x = base + damping * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Brandes' algorithm for (unweighted) betweenness centrality.
/// Exact; `O(V·E)` — intended for the moderate subgraphs TAF
/// materializes, not billion-edge graphs.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut bc = vec![0.0f64; n];
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut delta = vec![0.0f64; n];
    let mut q = VecDeque::new();

    for s in 0..n as u32 {
        stack.clear();
        for v in 0..n {
            preds[v].clear();
            sigma[v] = 0.0;
            dist[v] = i64::MAX;
            delta[v] = 0.0;
        }
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            stack.push(v);
            for &w in g.neighbors(v) {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    // Undirected: each pair counted twice.
    for x in bc.iter_mut() {
        *x /= 2.0;
    }
    bc
}

/// The set of node-ids within `k` hops of `center` (center included).
pub fn khop_ids(g: &Graph, center: NodeId, k: usize) -> Vec<NodeId> {
    let Some(c) = g.idx(center) else {
        return Vec::new();
    };
    let dist = bounded_bfs(g, c, k);
    let mut out: Vec<NodeId> = dist
        .iter()
        .filter(|(_, &d)| d <= k)
        .map(|(&i, _)| g.id(i))
        .collect();
    out.sort_unstable();
    out
}

fn bounded_bfs(g: &Graph, src: u32, k: usize) -> FxHashMap<u32, usize> {
    let mut dist: FxHashMap<u32, usize> = FxHashMap::default();
    dist.insert(src, 0);
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[&u];
        if du == k {
            continue;
        }
        for &v in g.neighbors(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

/// Count nodes whose attribute `key` equals `value` — the label
/// counting task of the paper's Fig. 8 / Fig. 17 experiment.
pub fn count_label(g: &Graph, key: &str, value: &str) -> usize {
    g.iter()
        .filter(|(_, n)| n.attrs.get(key).and_then(|v| v.as_text()) == Some(value))
        .count()
}

/// Approximate diameter: the maximum eccentricity observed from a
/// small set of BFS sweeps (double sweep heuristic). Exact on trees;
/// a lower bound in general.
pub fn diameter_estimate(g: &Graph) -> usize {
    if g.node_count() == 0 {
        return 0;
    }
    let far = |src: u32| -> (u32, usize) {
        let dist = bfs_distances(g, src);
        dist.iter()
            .enumerate()
            .filter(|(_, &d)| d != usize::MAX)
            .max_by_key(|(_, &d)| d)
            .map(|(i, &d)| (i as u32, d))
            .unwrap_or((src, 0))
    };
    let (a, _) = far(0);
    let (_, d) = far(a);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::{Delta, EventKind};

    fn graph_from_edges(edges: &[(u64, u64)]) -> Graph {
        let mut d = Delta::new();
        for &(s, t) in edges {
            d.apply_event(&EventKind::AddEdge {
                src: s,
                dst: t,
                weight: 1.0,
                directed: false,
            });
        }
        Graph::from_delta(d)
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = graph_from_edges(&[(1, 2), (2, 3), (1, 3)]);
        assert!((density(&g) - 1.0).abs() < 1e-12);
        assert!((average_degree(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_triangle_vs_path() {
        let tri = graph_from_edges(&[(1, 2), (2, 3), (1, 3)]);
        for i in 0..3 {
            assert!((local_clustering(&tri, i) - 1.0).abs() < 1e-12);
        }
        let path = graph_from_edges(&[(1, 2), (2, 3)]);
        let mid = path.idx(2).unwrap();
        assert_eq!(local_clustering(&path, mid), 0.0);
    }

    #[test]
    fn triangle_count_correct() {
        // Two triangles sharing the edge (2,3).
        let g = graph_from_edges(&[(1, 2), (2, 3), (1, 3), (2, 4), (3, 4)]);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn bfs_and_shortest_paths() {
        let g = graph_from_edges(&[(1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(shortest_path_len(&g, 1, 5), Some(4));
        assert_eq!(shortest_path_len(&g, 1, 1), Some(0));
        let h = graph_from_edges(&[(1, 2), (3, 4)]);
        assert_eq!(shortest_path_len(&h, 1, 4), None);
    }

    #[test]
    fn components() {
        let g = graph_from_edges(&[(1, 2), (2, 3), (10, 11)]);
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 2);
        let (i1, i3) = (g.idx(1).unwrap(), g.idx(3).unwrap());
        assert_eq!(comp[i1 as usize], comp[i3 as usize]);
        let i10 = g.idx(10).unwrap();
        assert_ne!(comp[i1 as usize], comp[i10 as usize]);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        // Star: all point at node 1.
        let mut d = Delta::new();
        for s in 2..=6u64 {
            d.apply_event(&EventKind::AddEdge {
                src: s,
                dst: 1,
                weight: 1.0,
                directed: true,
            });
        }
        let g = Graph::from_delta(d);
        let pr = pagerank(&g, 0.85, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conservation: {total}");
        let hub = g.idx(1).unwrap() as usize;
        assert!(pr
            .iter()
            .enumerate()
            .all(|(i, &x)| i == hub || x <= pr[hub]));
    }

    #[test]
    fn betweenness_path_center() {
        let g = graph_from_edges(&[(1, 2), (2, 3)]);
        let bc = betweenness(&g);
        let mid = g.idx(2).unwrap() as usize;
        assert!((bc[mid] - 1.0).abs() < 1e-9, "{bc:?}");
        let end = g.idx(1).unwrap() as usize;
        assert_eq!(bc[end], 0.0);
    }

    #[test]
    fn khop_bounded() {
        let g = graph_from_edges(&[(1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(khop_ids(&g, 1, 0), vec![1]);
        assert_eq!(khop_ids(&g, 1, 1), vec![1, 2]);
        assert_eq!(khop_ids(&g, 1, 2), vec![1, 2, 3]);
        assert_eq!(khop_ids(&g, 99, 2), Vec::<u64>::new());
    }

    #[test]
    fn label_counting() {
        let mut d = Delta::new();
        for id in 1..=4u64 {
            d.apply_event(&EventKind::AddNode { id });
            let label = if id % 2 == 0 { "Author" } else { "Paper" };
            d.apply_event(&EventKind::SetNodeAttr {
                id,
                key: "EntityType".into(),
                value: label.into(),
            });
        }
        let g = Graph::from_delta(d);
        assert_eq!(count_label(&g, "EntityType", "Author"), 2);
        assert_eq!(count_label(&g, "EntityType", "Paper"), 2);
        assert_eq!(count_label(&g, "EntityType", "Venue"), 0);
    }

    #[test]
    fn diameter_of_path() {
        let g = graph_from_edges(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(diameter_estimate(&g), 3);
    }

    #[test]
    fn degree_histogram_shape() {
        let g = graph_from_edges(&[(1, 2), (1, 3), (1, 4)]);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 3, "three leaves");
        assert_eq!(h[3], 1, "one hub");
    }

    #[test]
    fn empty_graph_algorithms() {
        let g = Graph::from_delta(Delta::new());
        assert_eq!(density(&g), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
        assert!(pagerank(&g, 0.85, 10).is_empty());
        assert_eq!(connected_components(&g).1, 0);
        assert_eq!(diameter_estimate(&g), 0);
    }
}

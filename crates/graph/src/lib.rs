//! # hgs-graph — static graph snapshots and algorithms
//!
//! A [`Graph`] is an immutable, analysis-friendly view of one snapshot
//! of the temporal graph (a [`hgs_delta::Delta`] interpreted as a graph
//! state): node-ids are mapped to dense indices and adjacency is laid
//! out in flat vectors, so the algorithm library ([`algo`]) runs at
//! array speed.
//!
//! The algorithms cover everything the paper's analytics examples and
//! evaluation use: degree/density, local & global clustering
//! coefficients (Fig. 15c's workload), PageRank, BFS shortest paths,
//! connected components, Brandes betweenness centrality, k-hop
//! neighborhood extraction, and label counting (Fig. 17's workload).

pub mod algo;
pub mod graph;

pub use graph::Graph;

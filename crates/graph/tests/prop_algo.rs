//! Property tests for the graph algorithm library on random graphs.

use hgs_delta::{Delta, EventKind};
use hgs_graph::{algo, Graph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u64..30, 0u64..30), 0..150).prop_map(|edges| {
        let mut d = Delta::new();
        for (a, b) in edges {
            if a != b {
                d.apply_event(&EventKind::AddEdge {
                    src: a,
                    dst: b,
                    weight: 1.0,
                    directed: false,
                });
            }
        }
        Graph::from_delta(d)
    })
}

proptest! {
    #[test]
    fn pagerank_is_a_distribution(g in arb_graph(), iters in 5usize..40) {
        let pr = algo::pagerank(&g, 0.85, iters);
        prop_assert_eq!(pr.len(), g.node_count());
        if !pr.is_empty() {
            let total: f64 = pr.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "mass {total}");
            prop_assert!(pr.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn clustering_in_unit_interval(g in arb_graph()) {
        for i in 0..g.node_count() as u32 {
            let c = algo::local_clustering(&g, i);
            prop_assert!((0.0..=1.0).contains(&c), "lcc {c}");
        }
        let avg = algo::average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn components_partition_the_graph(g in arb_graph()) {
        let (comp, n) = algo::connected_components(&g);
        prop_assert_eq!(comp.len(), g.node_count());
        if g.node_count() > 0 {
            prop_assert!(n >= 1 && n <= g.node_count());
            // Connected nodes share a component.
            for v in 0..g.node_count() as u32 {
                for &u in g.neighbors(v) {
                    prop_assert_eq!(comp[v as usize], comp[u as usize]);
                }
            }
        } else {
            prop_assert_eq!(n, 0);
        }
    }

    #[test]
    fn bfs_distance_is_symmetric_on_undirected(g in arb_graph()) {
        if g.node_count() < 2 {
            return Ok(());
        }
        let a = g.id(0);
        let b = g.id((g.node_count() - 1) as u32);
        prop_assert_eq!(
            algo::shortest_path_len(&g, a, b),
            algo::shortest_path_len(&g, b, a)
        );
    }

    #[test]
    fn khop_is_monotone_in_k(g in arb_graph()) {
        if g.node_count() == 0 {
            return Ok(());
        }
        let center = g.id(0);
        let mut prev = 0usize;
        for k in 0..4 {
            let ids = algo::khop_ids(&g, center, k);
            prop_assert!(ids.len() >= prev, "k-hop must grow with k");
            prop_assert!(ids.contains(&center));
            prev = ids.len();
        }
    }

    #[test]
    fn triangle_count_consistency(g in arb_graph()) {
        // Sum of per-node incident triangles = 3 * total triangles.
        let per_node: usize =
            (0..g.node_count() as u32).map(|i| algo::triangles_at(&g, i)).sum();
        prop_assert_eq!(per_node, 3 * algo::triangle_count(&g));
    }

    #[test]
    fn density_bounds(g in arb_graph()) {
        let d = algo::density(&g);
        prop_assert!((0.0..=1.0).contains(&d), "density {d}");
    }

    #[test]
    fn betweenness_nonnegative_and_zero_on_leaves(g in arb_graph()) {
        let bc = algo::betweenness(&g);
        for (i, &b) in bc.iter().enumerate() {
            prop_assert!(b >= -1e-9, "negative centrality at {i}");
            if g.degree(i as u32) <= 1 {
                prop_assert!(b.abs() < 1e-9, "leaf with centrality {b}");
            }
        }
    }
}

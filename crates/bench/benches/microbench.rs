//! Criterion microbenchmarks for HGS hot paths: delta algebra, codec,
//! compression, store operations, TGI retrieval primitives, and TAF
//! operators. Complements the figure harnesses in `src/bin/` (which
//! regenerate the paper's tables/figures); these track regressions on
//! the underlying operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use hgs_core::{KhopStrategy, Tgi, TgiConfig};
use hgs_datagen::{LabeledChurn, WikiGrowth};
use hgs_delta::codec::{decode_delta, encode_delta};
use hgs_delta::{Delta, TimeRange};
use hgs_store::{compress, decompress, SimStore, StoreConfig, Table};
use hgs_taf::TgiHandler;

fn bench_delta_algebra(c: &mut Criterion) {
    let events = WikiGrowth::sized(5_000).generate();
    let a = Delta::snapshot_by_replay(&events, events[3_000].time);
    let b = Delta::snapshot_by_replay(&events, events.last().unwrap().time);
    c.bench_function("delta/sum_5k", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| x.sum_assign(black_box(&b)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("delta/intersection_5k", |bench| {
        bench.iter(|| black_box(a.intersection(&b)))
    });
    c.bench_function("delta/difference_5k", |bench| {
        bench.iter(|| black_box(b.difference(&a)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let events = WikiGrowth::sized(5_000).generate();
    let d = Delta::snapshot_by_replay(&events, u64::MAX);
    let bytes = encode_delta(&d);
    c.bench_function("codec/encode_delta_5k", |bench| {
        bench.iter(|| black_box(encode_delta(&d)))
    });
    c.bench_function("codec/decode_delta_5k", |bench| {
        bench.iter(|| black_box(decode_delta(&bytes).unwrap()))
    });
    c.bench_function("compress/lzss_delta", |bench| {
        bench.iter(|| black_box(compress(&bytes)))
    });
    let compressed = compress(&bytes);
    c.bench_function("compress/lzss_decompress", |bench| {
        bench.iter(|| black_box(decompress(&compressed).unwrap()))
    });
}

fn bench_store(c: &mut Criterion) {
    let store = SimStore::new(StoreConfig::new(4, 1));
    for i in 0..1_000u64 {
        store.put(
            Table::Deltas,
            &i.to_be_bytes(),
            i * 31,
            bytes::Bytes::from(vec![0u8; 256]),
        );
    }
    c.bench_function("store/get", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 1) % 1_000;
            black_box(store.get(Table::Deltas, &i.to_be_bytes(), i * 31).unwrap())
        })
    });
}

fn bench_tgi(c: &mut Criterion) {
    let events = WikiGrowth::sized(20_000).generate();
    let end = events.last().unwrap().time;
    // Read cache off: these track regressions in the raw
    // fetch/decode/path-traversal code, which warm hits would mask.
    let tgi = Tgi::build(
        TgiConfig::default().with_read_cache_bytes(0),
        StoreConfig::new(4, 1),
        &events,
    );
    c.bench_function("tgi/snapshot_20k_events", |bench| {
        bench.iter(|| black_box(tgi.snapshot_c(end / 2, 2)))
    });
    c.bench_function("tgi/node_at", |bench| {
        bench.iter(|| black_box(tgi.node_at(0, end / 2)))
    });
    c.bench_function("tgi/node_history", |bench| {
        bench.iter(|| black_box(tgi.node_history(0, TimeRange::new(0, end + 1))))
    });
    c.bench_function("tgi/khop2_recursive", |bench| {
        bench.iter(|| black_box(tgi.khop_with(0, end / 2, 2, KhopStrategy::Recursive)))
    });
    // And once with the cache on: the steady-state a serving system
    // pays for a hot repeated read.
    let warm = Tgi::build(TgiConfig::default(), StoreConfig::new(4, 1), &events);
    c.bench_function("tgi/snapshot_20k_events_warm_cache", |bench| {
        bench.iter(|| black_box(warm.snapshot_c(end / 2, 2)))
    });
}

fn bench_taf(c: &mut Criterion) {
    let events = LabeledChurn {
        nodes: 1_000,
        edge_events: 8_000,
        label_flips: 4_000,
        seed: 3,
    }
    .generate();
    let end = events.last().unwrap().time;
    // Cache off here too: son_fetch tracks the raw parallel-fetch
    // protocol, not warm-cache replay.
    let tgi = Arc::new(Tgi::build(
        TgiConfig::default().with_read_cache_bytes(0),
        StoreConfig::new(2, 1),
        &events,
    ));
    let handler = TgiHandler::new(tgi, 2);
    let son = handler.son().timeslice(TimeRange::new(0, end + 1)).fetch();
    c.bench_function("taf/son_fetch_1k_nodes", |bench| {
        bench.iter(|| {
            black_box(
                handler
                    .son()
                    .timeslice(TimeRange::new(0, end + 1))
                    .fetch()
                    .len(),
            )
        })
    });
    c.bench_function("taf/node_compute_degree", |bench| {
        bench.iter(|| {
            black_box(son.node_compute(|n| n.version_at(end).map(|s| s.degree()).unwrap_or(0)))
        })
    });
    c.bench_function("taf/graph_materialize", |bench| {
        bench.iter(|| black_box(son.graph_at(end).node_count()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_delta_algebra, bench_codec, bench_store, bench_tgi, bench_taf
}
criterion_main!(benches);

//! Shared harness utilities: TSV output, timing, index construction.

use std::sync::Arc;

use hgs_core::{stats::measure, FetchReport, Tgi, TgiConfig};
use hgs_delta::{Event, Time};
use hgs_store::{CostModel, SimStore, StoreConfig};

/// Print an experiment banner.
pub fn banner(fig: &str, what: &str, params: &str) {
    println!("# === {fig}: {what} ===");
    println!("# params: {params}");
}

/// Print a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Format seconds with stable precision.
pub fn secs(v: f64) -> String {
    format!("{v:.4}")
}

/// Median of three timing samples (the experiments' standard
/// noise-rejection for warm/naive measurements).
pub fn median3(mut xs: [f64; 3]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[1]
}

/// Build a TGI over `events` on a fresh cluster, with the read cache
/// **disabled**: the figure harnesses measure the raw fetch + decode
/// cost of the index *shape* (the paper's per-query numbers), which a
/// warm cache would flatten into clone-and-replay time. Cache-centric
/// experiments (`multipoint`, `read_cache`) re-enable it explicitly
/// via [`TgiView::set_read_cache_budget`](hgs_core::TgiView::set_read_cache_budget).
pub fn build_tgi(cfg: TgiConfig, store: StoreConfig, events: &[Event]) -> Tgi {
    let tgi = Tgi::build(cfg, store, events);
    tgi.set_read_cache_budget(0);
    tgi
}

/// Run `f` and report it through the cost model at client width `c`.
pub fn timed<R>(tgi: &Tgi, c: usize, f: impl FnOnce() -> R) -> (R, FetchReport) {
    measure(tgi.store(), &CostModel::default(), c, f)
}

/// Run `f` against an arbitrary store.
pub fn timed_on<R>(store: &Arc<SimStore>, c: usize, f: impl FnOnce() -> R) -> (R, FetchReport) {
    measure(store, &CostModel::default(), c, f)
}

/// Query times that produce growing snapshot sizes: `n` timepoints
/// spread over the trace.
pub fn growth_times(events: &[Event], n: usize) -> Vec<Time> {
    let end = events.last().map(|e| e.time).unwrap_or(0);
    (1..=n).map(|i| end * i as u64 / n as u64).collect()
}

/// Pick `n` node-ids that exist in the final state, spread across the
/// id space, preferring nodes with many changes when `min_changes` is
/// set.
pub fn sample_nodes(events: &[Event], n: usize, min_changes: usize) -> Vec<u64> {
    let mut counts: hgs_delta::FxHashMap<u64, usize> = hgs_delta::FxHashMap::default();
    for e in events {
        let (a, b) = e.kind.touched();
        *counts.entry(a).or_insert(0) += 1;
        if let Some(b) = b {
            *counts.entry(b).or_insert(0) += 1;
        }
    }
    let mut ids: Vec<(u64, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_changes)
        .collect();
    ids.sort_unstable();
    let step = (ids.len() / n.max(1)).max(1);
    ids.into_iter()
        .step_by(step)
        .take(n)
        .map(|(id, _)| id)
        .collect()
}

/// The default TGI configuration used by the retrieval figures
/// (paper defaults: ps=500, l=500, ns=4).
pub fn paper_default_cfg() -> TgiConfig {
    TgiConfig::default()
}

/// Parallel-fetch-client sweep for the cache/multipoint experiments:
/// `HGS_CLIENTS` as a comma-separated list of positive integers
/// (e.g. `HGS_CLIENTS=1,8`), defaulting to `1,2,4`. A malformed list
/// panics rather than silently measuring a sweep the operator never
/// asked for (the rows land in committed bench artifacts).
pub fn clients_sweep() -> Vec<usize> {
    match std::env::var("HGS_CLIENTS") {
        Ok(s) => s
            .split(',')
            .map(|p| match p.trim().parse::<usize>() {
                Ok(c) if c >= 1 => c,
                _ => panic!(
                    "HGS_CLIENTS must be a comma-separated list of positive \
                     integers, got {s:?} (bad entry {p:?})"
                ),
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn growth_times_monotone() {
        let ev = WikiGrowth::sized(2_000).generate();
        let ts = growth_times(&ev, 5);
        assert_eq!(ts.len(), 5);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sample_nodes_respects_min_changes() {
        let ev = WikiGrowth::sized(5_000).generate();
        let nodes = sample_nodes(&ev, 20, 10);
        assert!(!nodes.is_empty());
        for id in nodes {
            let c = ev
                .iter()
                .filter(|e| {
                    let (a, b) = e.kind.touched();
                    a == id || b == Some(id)
                })
                .count();
            assert!(c >= 10);
        }
    }
}

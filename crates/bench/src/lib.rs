//! # hgs-bench — experiment harnesses for every table and figure
//!
//! One binary per experiment of the paper's §6 (see `src/bin/`), each
//! printing the same rows/series the paper reports as TSV, with both
//! measured wall-clock and cost-model ("cluster-shaped") latencies.
//! `run_all` executes the full suite. Criterion microbenches for the
//! hot paths live in `benches/`.

pub mod datasets;
pub mod experiments;
pub mod harness;

pub use datasets::*;
pub use harness::*;

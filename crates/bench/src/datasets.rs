//! Scaled-down analogs of the paper's four evaluation datasets.
//!
//! The paper's traces are 0.27–1 billion events on an EC2 cluster;
//! this box is a 2-core laptop-equivalent, so the harnesses use
//! proportionally scaled traces (the figures report series against
//! *relative* size, preserving shape). Sizes can be scaled further
//! via the `HGS_SCALE` environment variable (default 1.0).

use hgs_datagen::{augment_with_churn, FriendsterLike, LabeledChurn, SkewedLabels, WikiGrowth};
use hgs_delta::Event;

/// Global scale factor from `HGS_SCALE` (e.g. `HGS_SCALE=0.2` for a
/// quick smoke run).
pub fn scale() -> f64 {
    std::env::var("HGS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

fn scaled(n: usize) -> usize {
    ((n as f64) * scale()).max(1_000.0) as usize
}

/// Dataset 1 analog: growth-only Wikipedia-citation-like trace
/// (paper: 267M events; here: ~100k × HGS_SCALE).
pub fn dataset1() -> Vec<Event> {
    WikiGrowth {
        events: scaled(100_000),
        seed: 0xD5_01,
        // Real edit traces are bursty: a node's activity clusters in
        // time. This is what gives version-retrieval queries their
        // eventlist-size sensitivity (Fig. 14a).
        recency_bias: 0.6,
        ..WikiGrowth::default()
    }
    .generate()
}

/// Dataset 2 analog: Dataset 1 plus ~50% synthetic add/delete churn
/// (paper: +333M events).
pub fn dataset2() -> Vec<Event> {
    let base = dataset1();
    let extra = base.len() / 2;
    augment_with_churn(&base, extra, 0.5, 0xD5_02)
}

/// Dataset 3 analog: Dataset 1 plus ~110% churn (paper: +733M).
pub fn dataset3() -> Vec<Event> {
    let base = dataset1();
    let extra = base.len() * 11 / 10;
    augment_with_churn(&base, extra, 0.5, 0xD5_03)
}

/// Dataset 4 analog: Friendster-like static graph with uniform
/// timestamps (paper: 37.5M nodes / 500M edges; here ~15k/60k ×
/// HGS_SCALE).
pub fn dataset4() -> Vec<Event> {
    FriendsterLike {
        nodes: scaled(15_000),
        edges: scaled(60_000),
        seed: 0xD5_04,
        ..FriendsterLike::default()
    }
    .generate()
}

/// DBLP-like labeled trace for the incremental-computation experiment
/// (Fig. 17).
pub fn dataset_labeled() -> Vec<Event> {
    LabeledChurn {
        nodes: scaled(4_000).min(4_000),
        edge_events: scaled(20_000),
        label_flips: scaled(20_000),
        seed: 0xD5_05,
    }
    .generate()
}

/// Zipf-skewed labeled trace with hot, tail, and guaranteed-dead
/// label terms, for the secondary-index experiment.
pub fn dataset_skewed() -> Vec<Event> {
    SkewedLabels {
        nodes: scaled(4_000).min(8_000),
        edge_events: scaled(20_000),
        attr_churn: scaled(10_000),
        ..SkewedLabels::default()
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_wellformed() {
        std::env::set_var("HGS_SCALE", "0.02");
        for (name, ev) in [
            ("d1", dataset1()),
            ("d4", dataset4()),
            ("lab", dataset_labeled()),
            ("skew", dataset_skewed()),
        ] {
            assert!(!ev.is_empty(), "{name}");
            assert!(
                ev.windows(2).all(|w| w[0].time <= w[1].time),
                "{name} sorted"
            );
        }
        std::env::remove_var("HGS_SCALE");
    }
}

//! Node-version retrieval experiments: Figs. 14a, 14b, 14c and 16.

use crate::datasets::*;
use crate::harness::*;
use hgs_core::TgiConfig;
use hgs_delta::TimeRange;
use hgs_store::StoreConfig;

/// Bucket sampled nodes by change count so the x-axis matches the
/// paper's "number of change points".
fn version_probes(events: &[hgs_delta::Event]) -> Vec<u64> {
    let mut probes = Vec::new();
    for min in [10usize, 25, 50, 75, 100] {
        let nodes = sample_nodes(events, 4, min);
        probes.extend(nodes);
    }
    probes.sort_unstable();
    probes.dedup();
    probes
}

/// Fig. 14a: node-version retrieval vs change points for different
/// eventlist sizes l.
pub fn fig14a() {
    banner(
        "Figure 14a",
        "node version retrieval vs eventlist size l",
        "m=4 r=1 c=1 ps=500",
    );
    let events = dataset1();
    let full = TimeRange::new(0, events.last().unwrap().time + 1);
    header(&["l", "change_points", "wall_s", "modeled_s", "kbytes"]);
    for l in [2_500usize, 5_000, 10_000] {
        let cfg = TgiConfig::default()
            .with_eventlist_size(l)
            .with_timespan(50_000);
        let tgi = build_tgi(cfg, StoreConfig::new(4, 1), &events);
        for id in version_probes(&events) {
            let (h, rep) = timed(&tgi, 1, || tgi.node_history(id, full));
            println!(
                "{l}\t{}\t{}\t{}\t{:.1}",
                h.change_count(),
                secs(rep.wall_secs),
                secs(rep.modeled_secs),
                rep.bytes as f64 / 1e3
            );
        }
    }
}

/// Fig. 14b: node-version retrieval speedups from the parallel fetch
/// factor c.
pub fn fig14b() {
    banner(
        "Figure 14b",
        "node version retrieval vs parallel fetch factor c",
        "m=4 r=1 l=500 ps=500",
    );
    let events = dataset1();
    let full = TimeRange::new(0, events.last().unwrap().time + 1);
    let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
    header(&["c", "change_points", "wall_s", "modeled_s"]);
    for c in [1usize, 2, 4] {
        for id in version_probes(&events) {
            let (h, rep) = timed(&tgi, c, || tgi.node_history_c(id, full, c));
            println!(
                "{c}\t{}\t{}\t{}",
                h.change_count(),
                secs(rep.wall_secs),
                secs(rep.modeled_secs)
            );
        }
    }
}

/// Fig. 14c: node-version retrieval (≈100 change points) vs
/// micro-partition size ps.
pub fn fig14c() {
    banner(
        "Figure 14c",
        "node version retrieval vs partition size ps",
        "m=4 r=1 c=1 l=500, ~100 change points",
    );
    let events = dataset1();
    let full = TimeRange::new(0, events.last().unwrap().time + 1);
    header(&["ps", "change_points", "wall_s", "modeled_s", "kbytes"]);
    let heavy = sample_nodes(&events, 6, 100);
    for ps in [500usize, 1_000, 2_500, 5_000, 10_000] {
        let cfg = TgiConfig::default().with_partition_size(ps);
        let tgi = build_tgi(cfg, StoreConfig::new(4, 1), &events);
        for &id in &heavy {
            let (h, rep) = timed(&tgi, 1, || tgi.node_history(id, full));
            println!(
                "{ps}\t{}\t{}\t{}\t{:.1}",
                h.change_count(),
                secs(rep.wall_secs),
                secs(rep.modeled_secs),
                rep.bytes as f64 / 1e3
            );
        }
    }
}

/// Fig. 16: node-version retrieval on the Friendster analog (m=6,
/// c ∈ {1, 2}).
pub fn fig16() {
    banner(
        "Figure 16",
        "node version retrieval, Friendster-like dataset 4",
        "m=6 r=1 ps=500",
    );
    let events = dataset4();
    let full = TimeRange::new(0, events.last().unwrap().time + 1);
    let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(6, 1), &events);
    header(&["c", "change_points", "wall_s", "modeled_s"]);
    for c in [1usize, 2] {
        for id in version_probes(&events) {
            let (h, rep) = timed(&tgi, c, || tgi.node_history_c(id, full, c));
            println!(
                "{c}\t{}\t{}\t{}",
                h.change_count(),
                secs(rep.wall_secs),
                secs(rep.modeled_secs)
            );
        }
    }
}

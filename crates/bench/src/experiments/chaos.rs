//! Chaos experiment: what the fault/retry/repair layer costs and what
//! it buys.
//!
//! Three read phases run the same hot-node battery over one index
//! (m=4, r=2, cache off so every op is a real store round trip):
//!
//! * **baseline** — no fault plan attached: the pre-chaos fast path.
//! * **plan_zero** — a [`FaultPlan`] with every rate at zero: measures
//!   the pure overhead of having the fault/retry machinery engaged
//!   (the CI gate bounds this against the baseline).
//! * **chaos** — the canonical schedule: one machine in a persistent
//!   outage window (failover + circuit-breaker territory), 60‰ request
//!   flakes, 20‰ corrupt-on-read, and a 3× straggler multiplier on one
//!   machine (visible in `model_secs`, the cost-model estimate).
//!
//! Every `Ok` answer is verified against the no-fault oracle computed
//! before the plan attaches; every `Err` must be an honest
//! `Transient`/`Unavailable`/`Corrupt`. Availability is `ok / ops`.
//!
//! A separate **repair** scenario exercises the anti-entropy path
//! deterministically: build half the trace healthy, kill one machine,
//! append the rest (every row covering that machine lands partial and
//! enters the under-replication ledger), heal, run
//! [`SimStore::try_repair`] — and assert the repaired store is
//! **byte-identical** to a never-faulted build of the full trace.

use std::sync::Arc;
use std::time::Instant;

use hgs_delta::{Event, StaticNode, Time};
use hgs_store::{FaultPlan, SimStore, StoreConfig, StoreError};

use crate::datasets::*;
use crate::harness::*;

/// Seed for the canonical chaos schedule (fixed: the committed
/// artifact must be reproducible).
pub const CHAOS_SEED: u64 = 0xC4A0_5EED;

/// Machine held in a persistent outage during the chaos phase.
const OUTAGE_MACHINE: usize = 1;
/// Machine carrying the 3× straggler latency multiplier.
const SLOW_MACHINE: usize = 2;

/// Timed reads per phase × client setting.
const OPS: usize = 2_000;

/// One phase × client-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct ChaosRow {
    /// `baseline`, `plan_zero` or `chaos`.
    pub phase: &'static str,
    /// Parallel fetch clients (`set_clients_forced`).
    pub clients: usize,
    /// Timed reads issued.
    pub ops: u64,
    /// Reads that answered — each verified byte-identical to the
    /// no-fault oracle (a divergent answer panics the run).
    pub ok: u64,
    /// `ok / ops`.
    pub availability: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// Cost-model seconds for the whole battery — where the straggler
    /// latency multiplier shows up.
    pub model_secs: f64,
    /// Store-level retry sweeps the battery consumed.
    pub retries: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
}

/// Outcome of the deterministic repair scenario.
#[derive(Debug, Clone, Copy)]
pub struct RepairOutcome {
    /// Rows the dead machine missed (ledger size before repair).
    pub degraded_rows: usize,
    /// Rows the anti-entropy pass re-replicated.
    pub repaired: usize,
    /// Rows still degraded after the pass (must be 0).
    pub still_degraded: usize,
    /// Whether the repaired store dumped byte-identical to a
    /// never-faulted build of the same trace.
    pub byte_identical: bool,
}

fn honest(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Transient { .. } | StoreError::Unavailable { .. } | StoreError::Corrupt(_)
    )
}

/// The canonical chaos schedule.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(CHAOS_SEED)
        .with_outage(OUTAGE_MACHINE, 0, u64::MAX)
        .with_flake_per_mille(60)
        .with_corrupt_per_mille(20)
        .with_latency_multiplier(SLOW_MACHINE, 3.0)
}

/// Run the hot-node battery once and fold the answers into a row.
/// `oracle[i]` is the no-fault answer of query `i`.
fn run_phase(
    phase: &'static str,
    tgi: &hgs_core::Tgi,
    c: usize,
    queries: &[(u64, Time)],
    oracle: &[Option<StaticNode>],
) -> ChaosRow {
    let before = tgi.store().stats_snapshot();
    let mut lat_ns: Vec<u64> = Vec::with_capacity(queries.len());
    let mut ok = 0u64;
    let (_, report) = timed_on(tgi.store(), c, || {
        for (i, &(nid, t)) in queries.iter().enumerate() {
            let t0 = Instant::now();
            let got = tgi.try_node_at(nid, t);
            lat_ns.push(t0.elapsed().as_nanos() as u64);
            match got {
                Ok(answer) => {
                    assert_eq!(
                        answer, oracle[i],
                        "{phase}: node_at({nid}, {t}) diverged from the no-fault oracle"
                    );
                    ok += 1;
                }
                Err(e) => assert!(honest(&e), "{phase}: dishonest error: {e}"),
            }
        }
    });
    let diff = SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
    lat_ns.sort_unstable();
    let pct = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p).round() as usize] as f64 / 1_000.0;
    ChaosRow {
        phase,
        clients: c,
        ops: queries.len() as u64,
        ok,
        availability: ok as f64 / queries.len() as f64,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        model_secs: report.modeled_secs,
        retries: diff.iter().map(|m| m.retries).sum(),
        breaker_opens: diff.iter().map(|m| m.breaker_opens).sum(),
    }
}

/// Advance `i` to the next strict time boundary (an append must start
/// strictly after the indexed end).
fn align(events: &[Event], mut i: usize) -> usize {
    while i > 0 && i < events.len() && events[i].time <= events[i - 1].time {
        i += 1;
    }
    i
}

/// Deterministic repair scenario: one machine misses the whole second
/// half of the trace, then anti-entropy brings the store back to
/// byte-identical with a never-faulted build.
fn repair_scenario(events: &[Event]) -> RepairOutcome {
    let cfg = paper_default_cfg();
    let mid = align(events, events.len() / 2);
    let store = Arc::new(SimStore::new(StoreConfig::new(4, 2)));
    let mut tgi = hgs_core::Tgi::try_build_on(cfg, Arc::clone(&store), &events[..mid])
        .expect("healthy build of the first half");
    store.fail_machine(OUTAGE_MACHINE);
    tgi.try_append_events(&events[mid..])
        .expect("r=2 append survives one dead machine");
    let degraded_rows = store.under_replicated_count();
    assert!(degraded_rows > 0, "the dead machine must have missed rows");
    store.heal_machine(OUTAGE_MACHINE);
    let report = store.try_repair().expect("repair on a healed cluster");

    // Same build-then-append sequence (span seals depend on where the
    // append cut lands), just without the dead machine.
    let oracle_store = Arc::new(SimStore::new(StoreConfig::new(4, 2)));
    let mut oracle = hgs_core::Tgi::try_build_on(cfg, Arc::clone(&oracle_store), &events[..mid])
        .expect("never-faulted oracle build");
    oracle
        .try_append_events(&events[mid..])
        .expect("never-faulted oracle append");
    RepairOutcome {
        degraded_rows,
        repaired: report.repaired,
        still_degraded: report.still_degraded,
        byte_identical: store.content_rows() == oracle_store.content_rows(),
    }
}

/// The chaos experiment: availability, latency and retry cost under
/// the canonical fault schedule, plus the deterministic repair
/// scenario; printed as TSV and returned for JSON emission.
pub fn chaos() -> (Vec<ChaosRow>, RepairOutcome) {
    banner(
        "Chaos",
        "availability + retry/failover cost under a seeded fault schedule",
        &format!(
            "m=4 r=2 paper cfg cache-off, seed {CHAOS_SEED:#x}: outage on m{OUTAGE_MACHINE}, \
             60‰ flakes, 20‰ corrupt reads, 3x straggler on m{SLOW_MACHINE}"
        ),
    );
    let events = dataset1();
    let mut tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 2), &events);
    let hot = sample_nodes(&events, 32, 4);
    assert!(!hot.is_empty(), "hot set must be non-empty");
    let end = tgi.end_time();
    let queries: Vec<(u64, Time)> = (0..OPS)
        .map(|i| {
            let t = if i % 2 == 0 { end } else { end / 2 };
            (hot[i % hot.len()], t.max(1))
        })
        .collect();
    // No-fault oracle answers, computed before any plan attaches.
    let oracle: Vec<Option<StaticNode>> = queries
        .iter()
        .map(|&(nid, t)| tgi.try_node_at(nid, t).expect("healthy oracle read"))
        .collect();

    header(&[
        "phase", "c", "ops", "ok", "avail", "p50_us", "p99_us", "model_s", "retries", "opens",
    ]);
    let mut rows = Vec::new();
    for c in clients_sweep() {
        tgi.set_clients_forced(c);
        for (phase, plan) in [
            ("baseline", None),
            ("plan_zero", Some(FaultPlan::new(CHAOS_SEED))),
            ("chaos", Some(chaos_plan())),
        ] {
            tgi.store().set_fault_plan(plan);
            let row = run_phase(phase, &tgi, c, &queries, &oracle);
            println!(
                "{}\t{}\t{}\t{}\t{:.4}\t{:.1}\t{:.1}\t{}\t{}\t{}",
                row.phase,
                row.clients,
                row.ops,
                row.ok,
                row.availability,
                row.p50_us,
                row.p99_us,
                secs(row.model_secs),
                row.retries,
                row.breaker_opens,
            );
            rows.push(row);
        }
        // Detach + breaker reset so the next client width starts clean.
        tgi.store().set_fault_plan(None);
    }

    let repair = repair_scenario(&events);
    println!(
        "# repair: {} degraded rows -> {} repaired, {} still degraded, byte_identical={}",
        repair.degraded_rows, repair.repaired, repair.still_degraded, repair.byte_identical
    );
    (rows, repair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    /// Miniature end-to-end: the chaos phase degrades availability but
    /// never correctness, and the repair scenario restores
    /// byte-identity.
    #[test]
    fn chaos_battery_and_repair_smoke() {
        let events = WikiGrowth::sized(4_000).generate();
        let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 2), &events);
        let hot = sample_nodes(&events, 8, 2);
        let end = tgi.end_time();
        let queries: Vec<(u64, Time)> =
            (0..200).map(|i| (hot[i % hot.len()], end.max(1))).collect();
        let oracle: Vec<Option<StaticNode>> = queries
            .iter()
            .map(|&(nid, t)| tgi.try_node_at(nid, t).expect("healthy"))
            .collect();

        tgi.store().set_fault_plan(Some(FaultPlan::new(CHAOS_SEED)));
        let zero = run_phase("plan_zero", &tgi, 1, &queries, &oracle);
        assert_eq!(zero.ok, zero.ops, "a zero-rate plan refuses nothing");
        assert_eq!(zero.retries, 0);

        tgi.store().set_fault_plan(Some(chaos_plan()));
        let chaos = run_phase("chaos", &tgi, 1, &queries, &oracle);
        assert!(chaos.ok > 0, "failover must keep most answers flowing");
        assert!(
            chaos.retries > 0,
            "the outage machine forces retry sweeps ({} ok)",
            chaos.ok
        );

        let repair = repair_scenario(&events);
        assert!(repair.degraded_rows > 0);
        assert_eq!(repair.repaired, repair.degraded_rows);
        assert_eq!(repair.still_degraded, 0);
        assert!(repair.byte_identical, "repair must restore byte-identity");
    }
}

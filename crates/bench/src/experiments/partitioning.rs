//! Fig. 15a: 1-hop neighborhood retrieval under the three partitioning
//! and replication configurations.

use crate::datasets::*;
use crate::harness::*;
use hgs_core::{KhopStrategy, PartitionStrategy, TgiConfig};
use hgs_store::StoreConfig;

/// Fig. 15a: average 1-hop fetch cost over 250 random nodes for
/// Random vs Maxflow (locality) vs Maxflow+Replication.
pub fn fig15a() {
    banner(
        "Figure 15a",
        "1-hop retrieval: random vs locality (maxflow) vs locality+replication",
        "m=4 r=1 c=1 ps=500 ns=1, avg over 250 random nodes",
    );
    let events = dataset1();
    let end = events.last().unwrap().time;
    let t = end * 3 / 4;
    let probes = sample_nodes(&events, 250, 3);
    header(&[
        "strategy",
        "avg_wall_s",
        "avg_modeled_s",
        "avg_requests",
        "avg_kbytes",
        "nodes",
    ]);
    for (name, strategy) in [
        ("random", PartitionStrategy::Random),
        (
            "maxflow",
            PartitionStrategy::Locality {
                replicate_boundary: false,
            },
        ),
        (
            "maxflow+replication",
            PartitionStrategy::Locality {
                replicate_boundary: true,
            },
        ),
    ] {
        // One horizontal partition isolates the micro-partitioning
        // strategy: with ns>1 the sid hash scatters neighborhoods
        // before the partitioner can cluster them.
        let cfg = TgiConfig::default()
            .with_strategy(strategy)
            .with_horizontal(1);
        let tgi = build_tgi(cfg, StoreConfig::new(4, 1), &events);
        let mut wall = 0.0f64;
        let mut modeled = 0.0f64;
        let mut requests = 0u64;
        let mut bytes = 0u64;
        for &id in &probes {
            let ((), rep) = timed(&tgi, 1, || {
                let _ = tgi.khop_with(id, t, 1, KhopStrategy::Recursive);
            });
            wall += rep.wall_secs;
            modeled += rep.modeled_secs;
            requests += rep.requests();
            bytes += rep.bytes;
        }
        let n = probes.len() as f64;
        println!(
            "{name}\t{}\t{}\t{:.1}\t{:.1}\t{}",
            secs(wall / n),
            secs(modeled / n),
            requests as f64 / n,
            bytes as f64 / 1e3 / n,
            probes.len()
        );
    }
}

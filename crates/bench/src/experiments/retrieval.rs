//! Snapshot-retrieval experiments: Figs. 11, 12, 13a, 13b, 13c, 15b.

use crate::datasets::*;
use crate::harness::*;
use hgs_core::TgiConfig;
use hgs_store::StoreConfig;

/// Fig. 11: snapshot retrieval time vs snapshot size for varying
/// parallel fetch factor c (m=4, r=1, ps=500).
pub fn fig11() {
    banner(
        "Figure 11",
        "snapshot retrieval vs parallel fetch factor c",
        "m=4 r=1 ps=500 l=500",
    );
    let events = dataset1();
    let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
    header(&[
        "snapshot_nodes",
        "c",
        "wall_s",
        "modeled_s",
        "requests",
        "mbytes",
    ]);
    for t in growth_times(&events, 5) {
        for c in [1usize, 2, 4, 8, 16, 32] {
            let (snap, rep) = timed(&tgi, c, || tgi.snapshot_c(t, c));
            println!(
                "{}\t{}\t{}\t{}\t{}\t{:.2}",
                snap.cardinality(),
                c,
                secs(rep.wall_secs),
                secs(rep.modeled_secs),
                rep.requests(),
                rep.bytes as f64 / 1e6
            );
        }
    }
}

/// Fig. 12: snapshot retrieval across (m, r) configurations.
pub fn fig12() {
    banner(
        "Figure 12",
        "snapshot retrieval across m (machines) and r (replication)",
        "ps=500",
    );
    let events = dataset1();
    header(&["m", "r", "snapshot_nodes", "c", "wall_s", "modeled_s"]);
    for (m, r, cs) in [
        (1usize, 1usize, vec![1usize, 2, 4, 8]),
        (2, 1, vec![1, 2, 4, 8]),
        (2, 2, vec![1, 4, 8, 16]),
    ] {
        let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(m, r), &events);
        for t in growth_times(&events, 4) {
            for &c in &cs {
                let (snap, rep) = timed(&tgi, c, || tgi.snapshot_c(t, c));
                println!(
                    "{m}\t{r}\t{}\t{c}\t{}\t{}",
                    snap.cardinality(),
                    secs(rep.wall_secs),
                    secs(rep.modeled_secs)
                );
            }
        }
    }
}

/// Fig. 13a: compressed vs uncompressed delta storage (m=2, c=8, r=1).
pub fn fig13a() {
    banner(
        "Figure 13a",
        "snapshot retrieval, compressed vs uncompressed deltas",
        "m=2 c=8 r=1",
    );
    let events = dataset1();
    header(&["mode", "snapshot_nodes", "wall_s", "modeled_s", "stored_mb"]);
    for compress in [false, true] {
        let store_cfg = StoreConfig::new(2, 1).with_compression(compress);
        let tgi = build_tgi(paper_default_cfg(), store_cfg, &events);
        let stored_mb = tgi.storage_bytes() as f64 / 1e6;
        for t in growth_times(&events, 4) {
            let (snap, rep) = timed(&tgi, 8, || tgi.snapshot_c(t, 8));
            println!(
                "{}\t{}\t{}\t{}\t{:.2}",
                if compress {
                    "compressed"
                } else {
                    "uncompressed"
                },
                snap.cardinality(),
                secs(rep.wall_secs),
                secs(rep.modeled_secs),
                stored_mb
            );
        }
    }
}

/// Fig. 13b: effect of micro-delta partition size ps (m=4, c=8).
pub fn fig13b() {
    banner(
        "Figure 13b",
        "snapshot retrieval vs partition size ps",
        "m=4 c=8",
    );
    let events = dataset1();
    header(&["ps", "snapshot_nodes", "wall_s", "modeled_s", "requests"]);
    for ps in [1000usize, 2000, 4000] {
        let cfg = TgiConfig::default().with_partition_size(ps);
        let tgi = build_tgi(cfg, StoreConfig::new(4, 1), &events);
        for t in growth_times(&events, 4) {
            let (snap, rep) = timed(&tgi, 8, || tgi.snapshot_c(t, 8));
            println!(
                "{ps}\t{}\t{}\t{}\t{}",
                snap.cardinality(),
                secs(rep.wall_secs),
                secs(rep.modeled_secs),
                rep.requests()
            );
        }
    }
}

/// Fig. 13c: snapshot retrieval on the Friendster analog
/// (m=6, r=1, c=1, ps=500).
pub fn fig13c() {
    banner(
        "Figure 13c",
        "snapshot retrieval, Friendster-like dataset 4",
        "m=6 r=1 c=1 ps=500",
    );
    let events = dataset4();
    let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(6, 1), &events);
    // Friendster's nodes all exist from t=0 (the paper added synthetic
    // dates to a static snapshot): growth shows in the edge count.
    header(&["snapshot_nodes", "snapshot_edges", "wall_s", "modeled_s"]);
    for t in growth_times(&events, 6) {
        let (snap, rep) = timed(&tgi, 1, || tgi.snapshot_c(t, 1));
        println!(
            "{}\t{}\t{}\t{}",
            snap.cardinality(),
            snap.edge_count(),
            secs(rep.wall_secs),
            secs(rep.modeled_secs)
        );
    }
}

/// Fig. 15b: snapshot retrieval for growing histories (Datasets 1/2/3
/// share the same base graph; extra churn should barely change
/// retrieval of the same-size snapshots).
pub fn fig15b() {
    banner(
        "Figure 15b",
        "snapshot retrieval for growing dataset sizes",
        "m=4 r=1 c=4 ps=500",
    );
    header(&["dataset", "events", "snapshot_nodes", "wall_s", "modeled_s"]);
    for (name, events) in [
        ("dataset1", dataset1()),
        ("dataset2", dataset2()),
        ("dataset3", dataset3()),
    ] {
        let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
        // Query at the *base* trace's growth points so snapshot sizes
        // align across datasets, as in the paper.
        let base_end = dataset1().last().unwrap().time;
        for i in 1..=4u64 {
            let t = base_end * i / 4;
            let (snap, rep) = timed(&tgi, 4, || tgi.snapshot_c(t, 4));
            println!(
                "{name}\t{}\t{}\t{}\t{}",
                events.len(),
                snap.cardinality(),
                secs(rep.wall_secs),
                secs(rep.modeled_secs)
            );
        }
    }
}

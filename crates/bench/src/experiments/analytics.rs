//! TAF analytics experiments: Figs. 15c and 17.

use std::sync::Arc;
use std::time::Instant;

use crate::datasets::*;
use crate::harness::*;
use hgs_delta::{Delta, Event, EventKind, TimeRange};
use hgs_graph::algo::{count_label, local_clustering};
use hgs_graph::Graph;
use hgs_store::parallel::parallel_chunks;
use hgs_store::StoreConfig;
use hgs_taf::{SoTS, TgiHandler};

/// Fig. 15c: local-clustering-coefficient computation time on three
/// snapshot sizes for varying worker counts (the paper's Spark
/// cluster sweep; here the worker pool — real speedups up to the core
/// count, flat beyond).
pub fn fig15c() {
    banner(
        "Figure 15c",
        "TAF: max local clustering coefficient vs workers, three graph sizes",
        "compute time only (fetch excluded)",
    );
    let events = dataset1();
    let tgi = Arc::new(build_tgi(
        paper_default_cfg(),
        StoreConfig::new(4, 1),
        &events,
    ));
    let end = events.last().unwrap().time;
    header(&["graph_nodes", "workers", "wall_s", "max_lcc"]);
    for frac in [4u64, 2, 1] {
        let t = end / frac;
        // Fetch once (excluded from timing), then sweep workers.
        let handler = TgiHandler::new(tgi.clone(), 1);
        let son = handler.son().timeslice(TimeRange::new(t, t + 1)).fetch();
        let g = son.graph_at(t);
        let n = g.node_count();
        for workers in 1..=5usize {
            let t0 = Instant::now();
            let idx: Vec<u32> = (0..n as u32).collect();
            let lcc = parallel_chunks(idx, workers, |chunk| {
                chunk
                    .into_iter()
                    .map(|i| local_clustering(&g, i))
                    .collect::<Vec<f64>>()
            });
            let max = lcc.iter().copied().fold(0.0f64, f64::max);
            println!(
                "{n}\t{workers}\t{}\t{max:.4}",
                secs(t0.elapsed().as_secs_f64())
            );
        }
    }
}

/// The label-counting quantity of Fig. 8 / Fig. 17.
fn count_authors(d: &Delta) -> i64 {
    count_label(&Graph::from_delta(d.clone()), "EntityType", "Author") as i64
}

/// Fig. 8(b)'s incremental update function.
fn count_authors_delta(state_before: &Delta, prev: &i64, e: &Event) -> i64 {
    match &e.kind {
        EventKind::SetNodeAttr { id, key, value } if key == "EntityType" => {
            let was = state_before
                .node(*id)
                .and_then(|n| n.attrs.get("EntityType"))
                .and_then(|v| v.as_text())
                == Some("Author");
            let is = value.as_text() == Some("Author");
            prev + (is as i64) - (was as i64)
        }
        EventKind::RemoveNode { id } => {
            let was = state_before
                .node(*id)
                .and_then(|n| n.attrs.get("EntityType"))
                .and_then(|v| v.as_text())
                == Some("Author");
            prev - (was as i64)
        }
        _ => *prev,
    }
}

/// Fig. 17: label counting over 2-hop temporal subgraphs —
/// NodeComputeTemporal (recompute per version) vs NodeComputeDelta
/// (incremental), cumulative time vs version count.
pub fn fig17() {
    banner(
        "Figure 17",
        "NodeComputeTemporal vs NodeComputeDelta: label counting on 2-hop SoTS",
        "2 workers; cumulative compute time (fetch excluded)",
    );
    let events = dataset_labeled();
    let tgi = Arc::new(build_tgi(
        paper_default_cfg(),
        StoreConfig::new(4, 1),
        &events,
    ));
    let end = events.last().unwrap().time;
    let handler = TgiHandler::new(tgi.clone(), 2);
    let range = TimeRange::new(end / 4, end + 1);
    let roots = sample_nodes(&events, 24, 20);
    let sots = handler.sots(2).timeslice(range).roots(roots).fetch();
    // Keep subgraphs with enough activity for a 20-version sweep,
    // relaxing the bar if the (scaled-down) trace is too quiet.
    let mut kept = sots.select(|s| s.change_points().len() >= 20);
    if kept.len() < 4 {
        kept = sots.select(|s| s.change_points().len() >= 5);
    }
    if kept.is_empty() {
        kept = sots;
    }
    let sots = kept;
    println!("# subgraphs: {}", sots.len());
    header(&["version_count", "temporal_s", "delta_s", "speedup"]);
    for versions in [1usize, 2, 5, 10, 15, 20] {
        let truncated: Vec<_> = sots
            .subgraphs()
            .iter()
            .map(|s| s.truncate_changes(versions))
            .collect();
        let swept = SoTS::new(truncated, range, 2);

        let t0 = Instant::now();
        let a = swept.node_compute_temporal(count_authors);
        let temporal = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let b = swept.node_compute_delta(count_authors, count_authors_delta);
        let delta = t1.elapsed().as_secs_f64();

        assert_eq!(a, b, "incremental must equal recompute");
        println!(
            "{versions}\t{}\t{}\t{:.1}x",
            secs(temporal),
            secs(delta),
            temporal / delta.max(1e-9)
        );
    }
}

//! One function per paper experiment; the `src/bin/` wrappers and
//! `run_all` call these.

pub mod ablation;
pub mod analytics;
pub mod build_ingest;
pub mod chaos;
pub mod decode;
pub mod labels;
pub mod multipoint;
pub mod partitioning;
pub mod read_cache;
pub mod retrieval;
pub mod serve;
pub mod table1;
pub mod versions;

pub use ablation::{ablation_arity, ablation_horizontal, ablation_timespan};
pub use analytics::{fig15c, fig17};
pub use build_ingest::{build_ingest, BuildRow};
pub use chaos::{chaos, ChaosRow, RepairOutcome};
pub use decode::{decode, DecodeRow};
pub use labels::{labels, LabelRow};
pub use multipoint::{multipoint, multipoint_row, MultipointRow};
pub use partitioning::fig15a;
pub use read_cache::{read_cache, zipf_sequence, CacheRow};
pub use retrieval::{fig11, fig12, fig13a, fig13b, fig13c, fig15b};
pub use serve::{serve, ServeRow};
pub use table1::table1;
pub use versions::{fig14a, fig14b, fig14c, fig16};

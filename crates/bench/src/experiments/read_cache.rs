//! Read-cache experiment: cold vs warm single-point retrieval over a
//! Zipf-repeated working set.
//!
//! The paper's retrieval cost (§4.5, Table 1) is dominated by fetching
//! and decoding root-to-leaf delta paths. A serving system sees the
//! same hot times and nodes over and over; the session-wide LRU read
//! cache should make every repeat pay only clone-and-replay time.
//! Three workloads, each a Zipf-weighted query stream over a small
//! working set (hot items queried far more often than cold ones):
//!
//! * `snapshot` — single-point [`TgiView::snapshot_c`](hgs_core::TgiView::snapshot_c) at repeated times;
//! * `node_at` — static-vertex fetches of repeated nodes;
//! * `taf_node_t` — TAF `node_t` retrievals (SoN select pushdown) of
//!   repeated nodes over a fixed range;
//! * `multipoint` — batched [`TgiView::snapshots_c`](hgs_core::TgiView::snapshots_c) at every parallelism
//!   of the [`clients_sweep`] knob (`HGS_CLIENTS`, default `1,2,4`):
//!   the parallel fill's per-`(tsid, sid, leaf)` checkpoint-state
//!   tier must turn warm multi-client batches into eventlist-suffix
//!   replays (state hits, not just row hits). Parallel results are
//!   asserted equal to sequential and to the cache-bypassing
//!   reference before timing starts.
//!
//! Reported per workload: cache-disabled (cold/bypassed) wall seconds
//! per pass, warm wall seconds per pass (median of three, after one
//! priming pass), and the cache counters, row/state hit split
//! included. The CI smoke gate asserts warm < cold at every clients
//! setting and `state_hits > 0` for the multipoint rows; the
//! committed artifact (`BENCH_cache.json`) tracks the full-size run,
//! where warm single-point snapshots must be ≥ 2x faster than cold.

use std::sync::Arc;

use hgs_core::Tgi;
use hgs_delta::TimeRange;
use hgs_store::StoreConfig;
use hgs_taf::TgiHandler;

use crate::datasets::*;
use crate::harness::*;

/// The budget every workload runs under (the library default).
pub const CACHE_BUDGET_BYTES: usize = hgs_core::DEFAULT_READ_CACHE_BYTES;

/// One workload's cold/warm comparison.
#[derive(Debug, Clone, Copy)]
pub struct CacheRow {
    pub workload: &'static str,
    /// Parallel fetch clients the workload ran with.
    pub clients: usize,
    pub cold_secs: f64,
    pub warm_secs: f64,
    pub hits: u64,
    pub misses: u64,
    /// Checkpoint-state hits (Leaf/SidLeaf/Part tiers) within `hits`.
    pub state_hits: u64,
    /// Checkpoint-state misses within `misses`.
    pub state_misses: u64,
    pub cache_bytes: usize,
}

impl CacheRow {
    pub fn speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// Deterministic Zipf-ish sequence: `len` indices into `0..n`, rank
/// `r` drawn with weight `1/(r+1)` via a fixed LCG (no RNG dependency,
/// reproducible across runs).
pub fn zipf_sequence(n: usize, len: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0);
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut pick = n - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = r;
                break;
            }
        }
        out.push(pick);
    }
    out
}

/// Run one workload. "Cold" is the honest bypassed baseline: the
/// cache is disabled, so *every* query pays the full fetch + decode
/// (a cold pass with the cache on would already serve its own repeats
/// warm, hiding most of the contrast). "Warm" re-enables the budget,
/// primes with one pass, then takes the median of three timed passes;
/// cache counters are bracketed around the warm phase.
fn run_workload(
    tgi: &Tgi,
    workload: &'static str,
    clients: usize,
    mut pass: impl FnMut(),
) -> CacheRow {
    tgi.set_read_cache_budget(0);
    let cold_secs = median3([0, 1, 2].map(|_| {
        let t0 = std::time::Instant::now();
        pass();
        t0.elapsed().as_secs_f64()
    }));
    tgi.set_read_cache_budget(CACHE_BUDGET_BYTES);
    pass();
    let s0 = tgi.cache_stats();
    let warm_secs = median3([0, 1, 2].map(|_| {
        let t0 = std::time::Instant::now();
        pass();
        t0.elapsed().as_secs_f64()
    }));
    let s1 = tgi.cache_stats();
    assert!(
        s1.bytes <= s1.budget,
        "{workload}: cache bytes {} exceed budget {}",
        s1.bytes,
        s1.budget
    );
    CacheRow {
        workload,
        clients,
        cold_secs,
        warm_secs,
        hits: s1.hits - s0.hits,
        misses: s1.misses - s0.misses,
        state_hits: s1.state_hits - s0.state_hits,
        state_misses: s1.state_misses - s0.state_misses,
        cache_bytes: s1.bytes,
    }
}

/// The read-cache experiment over dataset 1, printed as TSV and
/// returned for JSON emission.
pub fn read_cache() -> Vec<CacheRow> {
    banner(
        "ReadCache",
        "cold vs warm single-point retrieval, Zipf-repeated working set",
        "m=4 r=1 ps=500 l=500 budget=64MiB",
    );
    let events = dataset1();
    let end = events.last().unwrap().time;
    let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);

    // Working sets: 8 hot times, 16 hot nodes, Zipf-repeated.
    let times = growth_times(&events, 8);
    let time_seq: Vec<u64> = zipf_sequence(times.len(), 48, 0xCAC4E)
        .into_iter()
        .map(|i| times[i])
        .collect();
    let nodes = sample_nodes(&events, 16, 4);
    let node_seq: Vec<u64> = zipf_sequence(nodes.len(), 96, 0xCAC4E)
        .into_iter()
        .map(|i| nodes[i])
        .collect();
    let range = TimeRange::new(end / 4, (3 * end) / 4);

    header(&[
        "workload",
        "c",
        "cold_s",
        "warm_s",
        "speedup",
        "hits",
        "misses",
        "state_hits",
        "cache_mb",
    ]);
    let mut rows = Vec::new();
    let mut push = |row: CacheRow| {
        println!(
            "{}\t{}\t{}\t{}\t{:.2}\t{}\t{}\t{}\t{:.1}",
            row.workload,
            row.clients,
            secs(row.cold_secs),
            secs(row.warm_secs),
            row.speedup(),
            row.hits,
            row.misses,
            row.state_hits,
            row.cache_bytes as f64 / (1 << 20) as f64,
        );
        rows.push(row);
    };

    push(run_workload(&tgi, "snapshot", 1, || {
        for &t in &time_seq {
            std::hint::black_box(tgi.snapshot_c(t, 1));
        }
    }));
    push(run_workload(&tgi, "node_at", 1, || {
        for &id in &node_seq {
            std::hint::black_box(tgi.node_at(id, end / 2));
        }
    }));
    // Multipoint batches at every parallelism of the sweep: the warm
    // runs must land in the per-(tsid, sid, leaf) state tier. Before
    // timing, pin down correctness: every parallelism must equal the
    // cache-bypassing reference (and hence each other).
    let batch = growth_times(&events, 6);
    let reference: Vec<_> = batch.iter().map(|&t| tgi.snapshot_uncached(t)).collect();
    for c in clients_sweep() {
        assert_eq!(
            tgi.snapshots_c(&batch, c),
            reference,
            "parallel (c={c}) multipoint must equal the sequential reference"
        );
        let batch = batch.clone();
        let tgi_ref = &tgi;
        push(run_workload(&tgi, "multipoint", c, move || {
            std::hint::black_box(tgi_ref.snapshots_c(&batch, c));
        }));
    }
    // TAF node_t: the handler shares the same Tgi, so its fetches ride
    // the same cache. Re-wrap per run to keep borrows simple.
    let shared = Arc::new(tgi);
    {
        let handler = TgiHandler::new(shared.clone(), 1);
        let ids = node_seq.clone();
        push(run_workload(&shared, "taf_node_t", 1, || {
            let son = handler
                .son()
                .timeslice(range)
                .select_ids(ids.clone())
                .fetch();
            std::hint::black_box(son.len());
        }));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;
    use hgs_store::SimStore;

    #[test]
    fn zipf_sequence_is_deterministic_and_skewed() {
        let a = zipf_sequence(8, 64, 7);
        let b = zipf_sequence(8, 64, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 8));
        let hot = a.iter().filter(|&&i| i == 0).count();
        let cold = a.iter().filter(|&&i| i == 7).count();
        assert!(hot > cold, "rank 0 must dominate rank 7: {hot} vs {cold}");
    }

    /// Warm passes hit the cache and issue far fewer store requests
    /// than cold ones (wall-clock gates live in CI where timing is
    /// meaningful; request counts are deterministic here).
    #[test]
    fn warm_pass_hits_cache_and_saves_requests() {
        let events = WikiGrowth::sized(6_000).generate();
        let end = events.last().unwrap().time;
        let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
        tgi.set_read_cache_budget(CACHE_BUDGET_BYTES);
        let times = growth_times(&events, 4);
        let seq: Vec<u64> = zipf_sequence(times.len(), 16, 1)
            .into_iter()
            .map(|i| times[i])
            .collect();

        let before = tgi.store().stats_snapshot();
        for &t in &seq {
            let _ = tgi.snapshot_c(t, 1);
        }
        let cold = SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
        let s_cold = tgi.cache_stats();

        let before = tgi.store().stats_snapshot();
        for &t in &seq {
            let _ = tgi.snapshot_c(t, 1);
        }
        let warm = SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
        let s_warm = tgi.cache_stats();

        let cold_rows: u64 = cold.iter().map(|m| m.rows_read).sum();
        let warm_rows: u64 = warm.iter().map(|m| m.rows_read).sum();
        assert!(
            warm_rows < cold_rows,
            "warm {warm_rows} rows vs cold {cold_rows}"
        );
        assert!(s_warm.hits > s_cold.hits);
        assert!(s_warm.bytes <= s_warm.budget);

        // node_at over a hot node set: the second pass is all hits.
        let nodes = sample_nodes(&events, 8, 2);
        for &id in &nodes {
            let _ = tgi.node_at(id, end / 2);
        }
        let before = tgi.store().stats_snapshot();
        for &id in &nodes {
            let _ = tgi.node_at(id, end / 2);
        }
        let diff = SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
        let repeat_requests: u64 = diff.iter().map(|m| m.gets + m.scans).sum();
        assert_eq!(
            repeat_requests, 0,
            "fully-warm node_at must not touch the store"
        );
    }
}

//! Multipoint snapshot retrieval: shared-path planner vs the naive
//! per-time loop (§4.6's path-sharing claim, beyond the paper's
//! single-point figures).
//!
//! For growing batch sizes `k`, times are spread across the trace and
//! retrieved twice: once as `k` independent `snapshot` calls
//! (refetching the whole root-to-leaf path per time) and once through
//! [`hgs_core::TgiView::try_snapshots`] (union of paths fetched once per
//! chunk, grouped scans, clone-at-divergence). Reported per `k`: wall
//! seconds, store requests and round-trips for both plans, plus the
//! planner's predicted fetch sharing.

use hgs_core::Tgi;
use hgs_delta::{Delta, Time};
use hgs_store::{SimStore, StoreConfig};

use crate::datasets::*;
use crate::harness::*;

/// One row of the comparison: naive loop vs shared planner at batch
/// size `k`. `shared_cold_secs` is the first planner execution on an
/// empty decode cache; `shared_secs` is the steady state (median of
/// three warm runs), which is what a serving system pays.
#[derive(Debug, Clone, Copy)]
pub struct MultipointRow {
    pub k: usize,
    /// Parallel fetch clients the shared plan ran with (the naive
    /// loop is always sequential — it is the per-time reference).
    pub clients: usize,
    pub naive_secs: f64,
    pub shared_cold_secs: f64,
    pub shared_secs: f64,
    pub naive_requests: u64,
    pub shared_requests: u64,
    pub shared_round_trips: u64,
    pub planned_shared_units: usize,
    pub planned_naive_units: usize,
}

/// Measure one batch size on a prepared index. Resets the shared read
/// cache first so `shared_cold_secs` is genuinely cold. The naive loop
/// uses the cache-bypassing snapshot path — single-point `snapshot`
/// now runs through the same planner + cache, so timing it would
/// measure the cache, not the per-time refetch this row contrasts.
pub fn multipoint_row(tgi: &mut Tgi, times: &[Time], c: usize) -> MultipointRow {
    tgi.set_read_cache_budget(0);
    tgi.set_read_cache_budget(hgs_core::DEFAULT_READ_CACHE_BYTES);
    let tgi = &*tgi;
    let naive =
        |ts: &[Time]| -> Vec<Delta> { ts.iter().map(|&t| tgi.snapshot_uncached(t)).collect() };

    let (shared_snaps, cold_rep) = timed(tgi, c, || tgi.snapshots_c(times, c));
    let shared_secs =
        median3([0, 1, 2].map(|_| timed(tgi, c, || tgi.snapshots_c(times, c)).1.wall_secs));
    let naive_secs = median3([0, 1, 2].map(|_| timed(tgi, 1, || naive(times)).1.wall_secs));
    let (naive_snaps, naive_rep) = timed(tgi, 1, || naive(times));
    assert_eq!(naive_snaps, shared_snaps, "planner must match naive");

    let before = tgi.store().stats_snapshot();
    let (_, shared_rep) = timed(tgi, c, || tgi.snapshots_c(times, c));
    let diff = SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
    let shared_round_trips: u64 = diff.iter().map(|m| m.batches).sum();

    let plan = tgi.plan_multipoint(times);
    MultipointRow {
        k: times.len(),
        clients: c,
        naive_secs,
        shared_cold_secs: cold_rep.wall_secs,
        shared_secs,
        naive_requests: naive_rep.requests(),
        shared_requests: shared_rep.requests(),
        shared_round_trips,
        planned_shared_units: plan.shared_fetch_units,
        planned_naive_units: plan.naive_fetch_units,
    }
}

/// The multipoint experiment over dataset 1: rows for k in
/// {2, 4, 8, 16}, printed as TSV and returned for JSON emission.
pub fn multipoint() -> Vec<MultipointRow> {
    banner(
        "Multipoint",
        "shared-path multipoint retrieval vs naive per-time loop",
        "m=4 r=1 ps=500 l=500, c from HGS_CLIENTS (default 1,2,4)",
    );
    let events = dataset1();
    let mut tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
    header(&[
        "k",
        "c",
        "naive_s",
        "shared_cold_s",
        "shared_s",
        "speedup",
        "naive_reqs",
        "shared_reqs",
        "round_trips",
    ]);
    let mut rows = Vec::new();
    let mut push = |row: MultipointRow| {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{:.2}\t{}\t{}\t{}",
            row.k,
            row.clients,
            secs(row.naive_secs),
            secs(row.shared_cold_secs),
            secs(row.shared_secs),
            row.naive_secs / row.shared_secs.max(1e-9),
            row.naive_requests,
            row.shared_requests,
            row.shared_round_trips,
        );
        rows.push(row);
    };
    for k in [2usize, 4, 8, 16] {
        let times = growth_times(&events, k);
        push(multipoint_row(&mut tgi, &times, 1));
    }
    // Clients sweep at a fixed batch size: the work-stealing parallel
    // fill must keep matching the naive reference at every c (the
    // equality assert inside `multipoint_row` checks each run).
    let times = growth_times(&events, 8);
    for c in clients_sweep() {
        if c == 1 {
            continue; // already covered by the k-sweep above
        }
        push(multipoint_row(&mut tgi, &times, c));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn shared_plan_issues_fewer_requests() {
        let events = WikiGrowth::sized(4_000).generate();
        let mut tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
        let times = growth_times(&events, 4);
        let row = multipoint_row(&mut tgi, &times, 1);
        assert!(
            row.shared_requests < row.naive_requests,
            "shared {} vs naive {}",
            row.shared_requests,
            row.naive_requests
        );
        assert!(row.planned_shared_units < row.planned_naive_units);
        assert!(row.shared_round_trips as usize <= row.planned_shared_units);
    }

    /// The parallel (work-stealing) fill also shares fetches — and the
    /// row's internal equality assert pins it to the naive reference.
    #[test]
    fn parallel_shared_plan_matches_and_shares() {
        let events = WikiGrowth::sized(4_000).generate();
        let mut tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
        let times = growth_times(&events, 4);
        let row = multipoint_row(&mut tgi, &times, 4);
        assert_eq!(row.clients, 4);
        assert!(
            row.shared_requests < row.naive_requests,
            "shared {} vs naive {}",
            row.shared_requests,
            row.naive_requests
        );
    }
}

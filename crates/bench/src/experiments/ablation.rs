//! Ablations over TGI's design choices, beyond the paper's figures:
//! tree arity (the DeltaGraph `k`), timespan length (`ts`), and the
//! number of horizontal partitions (`ns`). These quantify the
//! trade-offs §4.4/§4.5 argue qualitatively.

use crate::datasets::*;
use crate::harness::*;
use hgs_core::TgiConfig;
use hgs_delta::TimeRange;
use hgs_store::StoreConfig;

/// Arity ablation: higher arity flattens the intersection tree —
/// fewer deltas per snapshot path but weaker temporal compression
/// (larger storage).
pub fn ablation_arity() {
    banner(
        "Ablation A1",
        "intersection-tree arity: storage vs snapshot path cost",
        "m=4 r=1 c=4",
    );
    let events = dataset1();
    let end = events.last().unwrap().time;
    header(&[
        "arity",
        "storage_mb",
        "snapshot_wall_s",
        "snapshot_modeled_s",
        "requests",
    ]);
    for arity in [2usize, 4, 8, 64] {
        let cfg = TgiConfig {
            arity,
            ..TgiConfig::default()
        };
        let tgi = build_tgi(cfg, StoreConfig::new(4, 1), &events);
        let (_, rep) = timed(&tgi, 4, || tgi.snapshot_c(end / 2, 4));
        println!(
            "{arity}\t{:.2}\t{}\t{}\t{}",
            tgi.storage_bytes() as f64 / 1e6,
            secs(rep.wall_secs),
            secs(rep.modeled_secs),
            rep.requests()
        );
    }
}

/// Timespan-length ablation (§4.5's g(T) − f(T) trade-off): longer
/// spans mean fewer partition-map changes (better version queries)
/// but staler locality partitioning.
pub fn ablation_timespan() {
    banner(
        "Ablation A2",
        "timespan length: version-query cost vs partitioning freshness",
        "m=4 r=1 c=1",
    );
    let events = dataset1();
    let full = TimeRange::new(0, events.last().unwrap().time + 1);
    header(&[
        "events_per_timespan",
        "spans",
        "storage_mb",
        "version_wall_s",
        "version_modeled_s",
    ]);
    let probes = sample_nodes(&events, 8, 50);
    for ts in [10_000usize, 20_000, 50_000] {
        let cfg = TgiConfig {
            events_per_timespan: ts,
            ..TgiConfig::default()
        };
        let tgi = build_tgi(cfg, StoreConfig::new(4, 1), &events);
        let mut wall = 0.0;
        let mut modeled = 0.0;
        for &id in &probes {
            let (_, rep) = timed(&tgi, 1, || tgi.node_history(id, full));
            wall += rep.wall_secs;
            modeled += rep.modeled_secs;
        }
        let n = probes.len() as f64;
        println!(
            "{ts}\t{}\t{:.2}\t{}\t{}",
            tgi.span_count(),
            tgi.storage_bytes() as f64 / 1e6,
            secs(wall / n),
            secs(modeled / n)
        );
    }
}

/// Horizontal-partition ablation: more `sid`s spread fetch work across
/// machines (snapshot parallelism) at slightly higher key overheads.
pub fn ablation_horizontal() {
    banner(
        "Ablation A3",
        "horizontal partitions ns: snapshot parallelism",
        "m=4 r=1 c=8",
    );
    let events = dataset1();
    let end = events.last().unwrap().time;
    header(&[
        "ns",
        "snapshot_wall_s",
        "snapshot_modeled_s",
        "requests",
        "max_machine_share",
    ]);
    for ns in [1u32, 2, 4, 8] {
        let cfg = TgiConfig::default().with_horizontal(ns);
        let tgi = build_tgi(cfg, StoreConfig::new(4, 1), &events);
        let before = tgi.store().stats_snapshot();
        let (_, rep) = timed(&tgi, 8, || tgi.snapshot_c(end / 2, 8));
        let diff = hgs_store::SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
        let total: u64 = diff.iter().map(|m| m.bytes_read).sum();
        let max: u64 = diff.iter().map(|m| m.bytes_read).max().unwrap_or(0);
        println!(
            "{ns}\t{}\t{}\t{}\t{:.2}",
            secs(rep.wall_secs),
            secs(rep.modeled_secs),
            rep.requests(),
            max as f64 / total.max(1) as f64
        );
    }
}

//! Secondary-index experiment: label/attribute predicate queries
//! answered from the change-point rows vs explicit
//! materialize-then-filter, over a Zipf-skewed labeled trace.
//!
//! The materialized plan decodes a whole snapshot to answer "who is
//! labeled X at t"; the indexed plan decodes exactly one `(term,
//! tsid)` row. The experiment asserts answer equality for **every**
//! query before anything is timed (hot labels, tail labels, and the
//! generator's guaranteed-dead label), then reports wall time and
//! codec bytes for one pass over each plan, cache disabled so both
//! pay their true fetch + decode cost.
//!
//! The CI smoke gate asserts the indexed plan decodes strictly fewer
//! bytes and runs strictly faster for the point-predicate workload;
//! the committed artifact (`BENCH_labels.json`) tracks the full-size
//! run, where the gap is the paper-style headline (≥5x).
//!
//! The `attr_history` rows are reported uncached and ungated: a
//! bare-key row holds *every* node's set points, so with the session
//! cache off each per-node query re-decodes whole-term rows and lands
//! near parity with the node-scoped replay. The cache amortizes those
//! rows across queries in real sessions; the rows are kept in the
//! artifact to track that cost honestly.

use hgs_core::LABEL_KEY;
use hgs_datagen::{CHURN_KEY, DEAD_LABEL};
use hgs_delta::codec::decoded_bytes;
use hgs_delta::AttrValue;
use hgs_store::StoreConfig;

use crate::datasets::*;
use crate::harness::*;

/// One (plan, workload) measurement.
#[derive(Debug, Clone, Copy)]
pub struct LabelRow {
    pub mode: &'static str,
    pub workload: &'static str,
    /// Min wall seconds for one pass over the workload's queries.
    pub secs: f64,
    /// Codec bytes materialized by one pass (deterministic: the cache
    /// is disabled, every query decodes from the stored rows).
    pub bytes_decoded: u64,
    /// Queries per pass.
    pub queries: usize,
}

const TIMING_PASSES: usize = 7;

fn run_pair(
    workload: &'static str,
    queries: usize,
    mut indexed_pass: impl FnMut(),
    mut materialized_pass: impl FnMut(),
) -> [LabelRow; 2] {
    // Same protocol as the decode experiment: one untimed pass each to
    // fault in allocator state, byte counters bracketed around a
    // single pass, wall time the min over interleaved passes.
    indexed_pass();
    materialized_pass();
    let b0 = decoded_bytes();
    indexed_pass();
    let indexed_bytes = decoded_bytes() - b0;
    let b0 = decoded_bytes();
    materialized_pass();
    let materialized_bytes = decoded_bytes() - b0;

    let mut indexed_secs = f64::INFINITY;
    let mut materialized_secs = f64::INFINITY;
    for _ in 0..TIMING_PASSES {
        let t0 = std::time::Instant::now();
        indexed_pass();
        indexed_secs = indexed_secs.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        materialized_pass();
        materialized_secs = materialized_secs.min(t0.elapsed().as_secs_f64());
    }
    [
        LabelRow {
            mode: "indexed",
            workload,
            secs: indexed_secs,
            bytes_decoded: indexed_bytes,
            queries,
        },
        LabelRow {
            mode: "materialized",
            workload,
            secs: materialized_secs,
            bytes_decoded: materialized_bytes,
            queries,
        },
    ]
}

/// The secondary-index experiment over the Zipf-skewed labeled trace.
/// Returns rows for JSON emission.
pub fn labels() -> Vec<LabelRow> {
    banner(
        "Labels",
        "predicate queries: secondary index vs snapshot materialization",
        "m=4 r=1 paper defaults, secondary indexes on, cache off",
    );
    let events = dataset_skewed();
    let end = events.last().unwrap().time;
    let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);

    // Hot head, mid-rank, tail, and the guaranteed-dead label.
    let labels = ["Label00", "Label03", "Label10", DEAD_LABEL];
    let times = growth_times(&events, 4);
    let nodes = sample_nodes(&events, 16, 4);

    // Answer equality for every query — before anything is timed.
    let mut nonempty = 0usize;
    for &label in &labels {
        let value = AttrValue::Text(label.into());
        for &t in &times {
            let indexed = tgi.nodes_with_label_at(label, t);
            let oracle = tgi
                .try_nodes_matching_at_materialized(LABEL_KEY, &value, t)
                .expect("oracle");
            assert_eq!(indexed, oracle, "({label}, {t}) divergence");
            nonempty += usize::from(!indexed.is_empty());
        }
    }
    assert!(nonempty > 0, "degenerate workload: every answer empty");
    assert!(
        tgi.nodes_with_label_at(DEAD_LABEL, end).is_empty(),
        "the dead label must match nobody at the end of the trace"
    );
    for &id in &nodes {
        for key in [LABEL_KEY, CHURN_KEY] {
            assert_eq!(
                tgi.attr_history(id, key),
                tgi.try_attr_history_materialized(id, key).expect("oracle"),
                "attr_history({id}, {key}) divergence"
            );
        }
    }

    header(&["mode", "workload", "secs", "mb_decoded", "queries"]);
    let mut rows = Vec::new();
    let mut push = |r: LabelRow| {
        println!(
            "{}\t{}\t{}\t{:.2}\t{}",
            r.mode,
            r.workload,
            secs(r.secs),
            r.bytes_decoded as f64 / (1 << 20) as f64,
            r.queries,
        );
        rows.push(r);
    };

    for r in run_pair(
        "label_point",
        labels.len() * times.len(),
        || {
            for &label in &labels {
                for &t in &times {
                    std::hint::black_box(tgi.nodes_with_label_at(label, t));
                }
            }
        },
        || {
            for &label in &labels {
                let value = AttrValue::Text(label.into());
                for &t in &times {
                    std::hint::black_box(
                        tgi.try_nodes_matching_at_materialized(LABEL_KEY, &value, t)
                            .expect("oracle"),
                    );
                }
            }
        },
    ) {
        push(r);
    }
    for r in run_pair(
        "attr_history",
        nodes.len() * 2,
        || {
            for &id in &nodes {
                std::hint::black_box(tgi.attr_history(id, LABEL_KEY));
                std::hint::black_box(tgi.attr_history(id, CHURN_KEY));
            }
        },
        || {
            for &id in &nodes {
                for key in [LABEL_KEY, CHURN_KEY] {
                    std::hint::black_box(
                        tgi.try_attr_history_materialized(id, key).expect("oracle"),
                    );
                }
            }
        },
    ) {
        push(r);
    }
    rows
}

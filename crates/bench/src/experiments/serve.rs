//! Serving experiment: pinned-read latency while a writer ingests.
//!
//! The paper's TGI is described as an *active* store — historical
//! queries keep running while new events are appended (§3.1's
//! time-evolving ingest, §6's concurrent-client retrieval). The
//! [`TgiService`] makes that concrete: the writer seals spans and
//! publishes a watermark; readers pin the watermark at entry and
//! answer entirely from sealed spans. This harness measures what that
//! costs: N client threads run a hot node-retrieval loop (pin +
//! `node_at`, alternating the pinned end time and a mid-history time)
//! against
//!
//! * a **read-only** service (no writer — the quiesced baseline), and
//! * a **live-ingest** service, with a writer concurrently appending
//!   the trace's second half in [`APPEND_BATCHES`] batches.
//!
//! Per-read latency is recorded per op; reported per phase are the
//! p50/p99 of the merged histogram, throughput, and the watermark
//! range the clients observed (the ingest phase must span several).
//! Readers hold no lock the writer needs — `pin()` is an
//! `Arc` clone under a read lock — so read latency under ingest should
//! sit within CPU-contention noise of the baseline; the CI smoke gate
//! bounds the regression and the committed artifact
//! (`BENCH_serve.json`) tracks the full-size run.
//!
//! Correctness is asserted in-experiment, not just timed: the first
//! time a client observes a new watermark it takes an (untimed) full
//! snapshot of the pinned view; after the run every such observation
//! is replayed against a quiesced from-scratch [`Tgi::build`] over
//! exactly the event prefix that watermark denotes, and must be
//! byte-identical. The final service must hold the whole trace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hgs_core::{Tgi, TgiService};
use hgs_delta::{Delta, Event, Time};
use hgs_store::{SimStore, StoreConfig};

use crate::datasets::*;
use crate::harness::*;

/// Append batches the ingest phase replays over the trace's second
/// half (so clients can observe up to `1 + APPEND_BATCHES` watermarks).
pub const APPEND_BATCHES: usize = 6;

/// Minimum timed reads per client (the read-only phase runs exactly
/// this many; the ingest phase keeps reading until the writer is done).
const MIN_OPS: u64 = 2_000;

/// Per-client op cap for the ingest phase, so a slow full-size append
/// can't grow the latency log without bound.
const OPS_CAP: u64 = 100_000;

/// One phase × client-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct ServeRow {
    /// `read_only` (quiesced baseline) or `ingest` (concurrent writer).
    pub phase: &'static str,
    /// Concurrent client threads issuing pinned reads.
    pub clients: usize,
    /// Total timed reads across all clients.
    pub ops: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub reads_per_sec: f64,
    /// Lowest / highest watermark any client pinned during the phase.
    pub watermark_lo: u64,
    pub watermark_hi: u64,
    /// Distinct watermarks whose answers were replayed against the
    /// quiesced oracle (each byte-identical, or the run panics).
    pub epochs_verified: usize,
}

/// Everything one client thread brings back from its read loop.
struct ClientLog {
    lat_ns: Vec<u64>,
    /// First observation of each watermark: `(epoch, end_time,
    /// untimed full snapshot)` — the oracle-replay witnesses.
    seen: Vec<(u64, Time, Delta)>,
    watermark_lo: u64,
    watermark_hi: u64,
}

/// The pinned-read loop one client runs: each timed op pins the
/// current watermark and fetches one hot node, alternating between
/// the pinned end time (chases the ingest frontier) and a mid-history
/// time (sealed early span, immutable across watermarks). Runs at
/// least `min_ops` reads, then keeps going until `done` (the writer)
/// or the op cap.
fn client_loop(svc: &TgiService, hot: &[u64], min_ops: u64, done: &AtomicBool) -> ClientLog {
    let mut log = ClientLog {
        lat_ns: Vec::new(),
        seen: Vec::new(),
        watermark_lo: u64::MAX,
        watermark_hi: 0,
    };
    let mut last_epoch = 0u64;
    let mut i = 0usize;
    while (log.lat_ns.len() as u64) < min_ops
        || (!done.load(Ordering::Acquire) && (log.lat_ns.len() as u64) < OPS_CAP)
    {
        let t0 = Instant::now();
        let view = svc.pin();
        let t = if i.is_multiple_of(2) {
            view.end_time()
        } else {
            view.end_time() / 2
        };
        std::hint::black_box(view.node_at(hot[i % hot.len()], t.max(1)));
        log.lat_ns.push(t0.elapsed().as_nanos() as u64);
        let epoch = view.epoch();
        log.watermark_lo = log.watermark_lo.min(epoch);
        log.watermark_hi = log.watermark_hi.max(epoch);
        if epoch != last_epoch {
            assert!(epoch > last_epoch, "pinned watermark went backwards");
            last_epoch = epoch;
            let te = view.end_time();
            let snap = view.try_snapshot(te).expect("pinned read on live service");
            log.seen.push((epoch, te, snap));
        }
        i += 1;
    }
    log
}

/// Run one phase: `clients` reader threads, plus — when `append` is
/// set — a writer replaying the batch cuts. Returns the merged row
/// and every oracle witness the clients collected.
fn run_phase(
    phase: &'static str,
    clients: usize,
    events: &[Event],
    cuts: &[usize],
    hot: &[u64],
    ingest: bool,
) -> (ServeRow, Vec<(u64, Time, Delta)>) {
    let svc = TgiService::try_build(
        paper_default_cfg(),
        StoreConfig::new(4, 1),
        &events[..cuts[0]],
    )
    .expect("healthy build");
    let done = AtomicBool::new(!ingest);
    let t0 = Instant::now();
    let logs: Vec<ClientLog> = std::thread::scope(|s| {
        let svc = &svc;
        let done = &done;
        let readers: Vec<_> = (0..clients)
            .map(|_| s.spawn(move || client_loop(svc, hot, MIN_OPS, done)))
            .collect();
        if ingest {
            s.spawn(move || {
                for w in cuts.windows(2) {
                    svc.try_append_events(&events[w[0]..w[1]])
                        .expect("healthy append");
                }
                done.store(true, Ordering::Release);
            });
        }
        readers
            .into_iter()
            .map(|r| r.join().expect("client panicked"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    if ingest {
        // The writer sealed every batch: the service now holds the
        // whole trace at the final watermark.
        assert_eq!(svc.watermark(), cuts.len() as u64, "one epoch per batch");
        assert_eq!(svc.pin().event_count(), events.len(), "full trace sealed");
    }

    let mut lat: Vec<u64> = Vec::new();
    let mut seen = Vec::new();
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for log in logs {
        lat.extend(log.lat_ns);
        seen.extend(log.seen);
        lo = lo.min(log.watermark_lo);
        hi = hi.max(log.watermark_hi);
    }
    lat.sort_unstable();
    let row = ServeRow {
        phase,
        clients,
        ops: lat.len() as u64,
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
        reads_per_sec: lat.len() as f64 / wall.max(1e-9),
        watermark_lo: lo,
        watermark_hi: hi,
        epochs_verified: 0,
    };
    (row, seen)
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    assert!(!sorted_ns.is_empty());
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Advance `i` to the next strict time boundary (an append must start
/// strictly after the indexed end).
fn align(events: &[Event], mut i: usize) -> usize {
    while i > 0 && i < events.len() && events[i].time <= events[i - 1].time {
        i += 1;
    }
    i
}

/// Cut the trace into an initial build plus [`APPEND_BATCHES`] append
/// batches, every cut on a strict time boundary: `cuts[0]` is the
/// initial prefix, `cuts[k]` the prefix sealed by watermark `1 + k`.
fn batch_cuts(events: &[Event]) -> Vec<usize> {
    let mid = align(events, events.len() / 2);
    let mut cuts = vec![mid];
    for k in 1..APPEND_BATCHES {
        let cut = align(events, mid + (events.len() - mid) * k / APPEND_BATCHES);
        if cut > *cuts.last().unwrap() && cut < events.len() {
            cuts.push(cut);
        }
    }
    cuts.push(events.len());
    cuts
}

/// Replay every `(epoch, end_time, snapshot)` witness against a
/// quiesced from-scratch build over the prefix that epoch denotes;
/// panics on any divergence. Returns how many distinct epochs were
/// verified.
fn verify_against_quiesced_oracle(
    events: &[Event],
    cuts: &[usize],
    oracles: &mut BTreeMap<u64, Tgi>,
    seen: &[(u64, Time, Delta)],
) -> usize {
    let mut verified = std::collections::BTreeSet::new();
    for (epoch, t, snap) in seen {
        let oracle = oracles.entry(*epoch).or_insert_with(|| {
            let prefix = cuts[(*epoch - 1) as usize];
            Tgi::try_build_on(
                paper_default_cfg(),
                Arc::new(SimStore::new(StoreConfig::new(4, 1))),
                &events[..prefix],
            )
            .expect("oracle build")
        });
        assert_eq!(oracle.end_time(), *t, "end time of watermark {epoch}");
        assert_eq!(
            *snap,
            oracle.try_snapshot(*t).expect("oracle read"),
            "pinned snapshot at watermark {epoch} diverged from the quiesced rebuild"
        );
        verified.insert(*epoch);
    }
    verified.len()
}

/// The serving experiment: read-only vs live-ingest pinned-read
/// latency at every client count of the sweep, printed as TSV and
/// returned for JSON emission.
pub fn serve() -> Vec<ServeRow> {
    banner(
        "Serve",
        "pinned-read latency during live ingest (TgiService watermarks)",
        &format!("m=4 r=1 paper cfg, {APPEND_BATCHES} append batches over the trace's second half"),
    );
    let events = dataset1();
    let cuts = batch_cuts(&events);
    let hot = sample_nodes(&events[..cuts[0]], 16, 4);
    assert!(!hot.is_empty(), "hot set must be non-empty");

    header(&[
        "phase", "c", "ops", "p50_us", "p99_us", "kreads_s", "w_lo", "w_hi", "verified",
    ]);
    let mut oracles: BTreeMap<u64, Tgi> = BTreeMap::new();
    let mut rows = Vec::new();
    for c in clients_sweep() {
        for (phase, ingest) in [("read_only", false), ("ingest", true)] {
            let (mut row, seen) = run_phase(phase, c, &events, &cuts, &hot, ingest);
            row.epochs_verified =
                verify_against_quiesced_oracle(&events, &cuts, &mut oracles, &seen);
            println!(
                "{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{}\t{}\t{}",
                row.phase,
                row.clients,
                row.ops,
                row.p50_us,
                row.p99_us,
                row.reads_per_sec / 1_000.0,
                row.watermark_lo,
                row.watermark_hi,
                row.epochs_verified,
            );
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn batch_cuts_are_strict_time_boundaries() {
        let events = WikiGrowth::sized(5_000).generate();
        let cuts = batch_cuts(&events);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts increase");
        assert_eq!(*cuts.last().unwrap(), events.len());
        for &c in &cuts[..cuts.len() - 1] {
            assert!(
                events[c].time > events[c - 1].time,
                "cut {c} must start a new timestamp"
            );
        }
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let xs: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert!((percentile_us(&xs, 0.50) - 50.0).abs() < 1.5);
        assert!((percentile_us(&xs, 0.99) - 99.0).abs() < 1.5);
    }

    /// A miniature end-to-end run: clients over a live-ingest service
    /// observe several watermarks and every witness snapshot replays
    /// byte-identically against the quiesced oracle.
    #[test]
    fn ingest_phase_overlaps_readers_and_verifies_against_oracle() {
        let events = WikiGrowth::sized(6_000).generate();
        let cuts = batch_cuts(&events);
        let hot = sample_nodes(&events[..cuts[0]], 8, 2);
        let (row, seen) = run_phase("ingest", 2, &events, &cuts, &hot, true);
        assert!(row.ops >= 2 * MIN_OPS);
        assert!(
            row.watermark_hi > row.watermark_lo,
            "clients must observe the watermark advancing mid-run \
             ({}..{})",
            row.watermark_lo,
            row.watermark_hi
        );
        let mut oracles = BTreeMap::new();
        let verified = verify_against_quiesced_oracle(&events, &cuts, &mut oracles, &seen);
        assert!(verified >= 1, "at least the final watermark is witnessed");
    }
}

//! Decode-path experiment: bytes materialized and wall time per query
//! under the row-wise vs the columnar storage layout.
//!
//! The row-wise codec must decode a whole delta or eventlist row to
//! answer anything. The columnar layout stores each row as
//! separately-compressed column segments and decodes lazily, so
//! node-scoped queries (`node_at`, `node_history`, recursive k-hop)
//! touch only the dictionary plus the columns they need, while full
//! snapshots decode everything exactly once — same bytes, same speed.
//!
//! Measured per layout over the same trace and index shape, cache
//! disabled so every query pays its true decode cost:
//!
//! * `snapshot` — cold single-point snapshots (decodes every column);
//! * `node_at` — static-vertex fetches (columnar: dictionary + the
//!   columns of the touching events only);
//! * `node_history` — versioned node retrievals over a mid range.
//!
//! `bytes_decoded` comes from the codec's process-wide counter
//! ([`hgs_delta::codec::decoded_bytes`]), bracketed around one pass.
//! The CI smoke gate asserts the columnar layout decodes strictly
//! fewer bytes for `node_at` and `node_history` and holds cold
//! snapshots within noise of row-wise; the committed artifact
//! (`BENCH_decode.json`) tracks the full-size run.

use hgs_delta::codec::decoded_bytes;
use hgs_delta::{StorageLayout, TimeRange};
use hgs_store::StoreConfig;

use crate::datasets::*;
use crate::harness::*;

/// One (layout, workload) measurement.
#[derive(Debug, Clone, Copy)]
pub struct DecodeRow {
    pub layout: &'static str,
    pub workload: &'static str,
    /// Median wall seconds for one pass over the workload's queries.
    pub secs: f64,
    /// Codec bytes materialized by one pass (identical across passes:
    /// the cache is disabled, every query decodes from the stored
    /// bytes).
    pub bytes_decoded: u64,
    /// Queries per pass.
    pub queries: usize,
}

impl DecodeRow {
    pub fn bytes_per_query(&self) -> u64 {
        self.bytes_decoded / self.queries.max(1) as u64
    }
}

const TIMING_PASSES: usize = 7;

fn run_pair(
    workload: &'static str,
    queries: usize,
    mut row_pass: impl FnMut(),
    mut col_pass: impl FnMut(),
) -> [DecodeRow; 2] {
    // One untimed pass each to fault in allocator state, then bracket
    // the byte counter around a single pass (deterministic: the cache
    // is off, every pass decodes the same stored bytes). Wall time is
    // the min over interleaved passes — alternating layouts inside one
    // loop keeps thermal/scheduler drift from biasing whichever layout
    // happens to run second, and min-of-N is the noise-robust estimate
    // for a deterministic workload.
    row_pass();
    col_pass();
    let b0 = decoded_bytes();
    row_pass();
    let row_bytes = decoded_bytes() - b0;
    let b0 = decoded_bytes();
    col_pass();
    let col_bytes = decoded_bytes() - b0;

    let mut row_secs = f64::INFINITY;
    let mut col_secs = f64::INFINITY;
    for _ in 0..TIMING_PASSES {
        let t0 = std::time::Instant::now();
        row_pass();
        row_secs = row_secs.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        col_pass();
        col_secs = col_secs.min(t0.elapsed().as_secs_f64());
    }
    [
        DecodeRow {
            layout: "row_wise",
            workload,
            secs: row_secs,
            bytes_decoded: row_bytes,
            queries,
        },
        DecodeRow {
            layout: "columnar",
            workload,
            secs: col_secs,
            bytes_decoded: col_bytes,
            queries,
        },
    ]
}

/// The decode experiment over dataset 1: same trace, same index
/// shape, both layouts. Returns rows for JSON emission.
pub fn decode() -> Vec<DecodeRow> {
    banner(
        "Decode",
        "bytes decoded + wall time per query, row-wise vs columnar layout",
        "m=4 r=1 paper defaults, cache off",
    );
    let events = dataset1();
    let end = events.last().unwrap().time;

    let build = |layout: StorageLayout| {
        build_tgi(
            paper_default_cfg().with_layout(layout),
            StoreConfig::new(4, 1),
            &events,
        )
    };
    let row = build(StorageLayout::RowWise);
    let col = build(StorageLayout::Columnar);

    let times = growth_times(&events, 4);
    let nodes = sample_nodes(&events, 16, 4);
    let range = TimeRange::new(end / 4, (3 * end) / 4);

    // Answers must agree before anything is timed.
    for &t in &times {
        assert_eq!(row.snapshot(t), col.snapshot(t), "snapshot divergence");
    }
    for &id in &nodes {
        assert_eq!(
            row.node_at(id, end / 2),
            col.node_at(id, end / 2),
            "node_at divergence"
        );
        assert_eq!(
            row.node_history(id, range),
            col.node_history(id, range),
            "node_history divergence"
        );
    }

    header(&[
        "layout",
        "workload",
        "secs",
        "mb_decoded",
        "queries",
        "kb/query",
    ]);
    let mut rows = Vec::new();
    let mut push = |r: DecodeRow| {
        println!(
            "{}\t{}\t{}\t{:.2}\t{}\t{:.1}",
            r.layout,
            r.workload,
            secs(r.secs),
            r.bytes_decoded as f64 / (1 << 20) as f64,
            r.queries,
            r.bytes_per_query() as f64 / 1024.0,
        );
        rows.push(r);
    };

    for r in run_pair(
        "snapshot",
        times.len(),
        || {
            for &t in &times {
                std::hint::black_box(row.snapshot_c(t, 1));
            }
        },
        || {
            for &t in &times {
                std::hint::black_box(col.snapshot_c(t, 1));
            }
        },
    ) {
        push(r);
    }
    for r in run_pair(
        "node_at",
        nodes.len(),
        || {
            for &id in &nodes {
                std::hint::black_box(row.node_at(id, end / 2));
            }
        },
        || {
            for &id in &nodes {
                std::hint::black_box(col.node_at(id, end / 2));
            }
        },
    ) {
        push(r);
    }
    for r in run_pair(
        "node_history",
        nodes.len(),
        || {
            for &id in &nodes {
                std::hint::black_box(row.node_history(id, range));
            }
        },
        || {
            for &id in &nodes {
                std::hint::black_box(col.node_history(id, range));
            }
        },
    ) {
        push(r);
    }
    rows
}

//! Build/ingest benchmark: the batched, parallel write path vs the
//! seed row-at-a-time sequential construction (§4.4 *Construction and
//! Update*).
//!
//! The trace is split ~80/20 into a bulk build and a streaming append
//! (the paper's "create an independent TGI with the new events and
//! merge"). Three write paths are compared on identical events:
//!
//! * **seed** — fused sequential encode, one store `put` per encoded
//!   row (`write_batch_rows = 0`), the pre-batching reference;
//! * **batched** — per-`sid` span encoding (inline at `c = 1`, on the
//!   work-stealing queue above; `HGS_CLIENTS` sweep, default
//!   `1,2,4`), rows buffered and flushed as one `put_batch` round
//!   trip per machine.
//!
//! Before timing, every batched variant's final store is asserted
//! **byte-identical** to the seed's (row-for-row table/key/value
//! equality per machine) — the equivalence the write path guarantees.
//! Reported per variant: build and append wall seconds (median of
//! three), per-row put count, write-batch round trips, and rows per
//! batch. The CI smoke gate requires batched round trips ≤ 10% of the
//! put count and batched `c=1` no slower than seed.

use std::sync::Arc;

use hgs_core::{Tgi, TgiConfig};
use hgs_delta::Event;
use hgs_store::{SimStore, StoreConfig};

use crate::datasets::*;
use crate::harness::*;

/// One write-path variant's measurements.
#[derive(Debug, Clone, Copy)]
pub struct BuildRow {
    /// Build parallelism (work-stealing clients for span encoding).
    pub clients: usize,
    /// `true` for the seed row-at-a-time reference path.
    pub seed_path: bool,
    /// Bulk-build wall seconds (median of three fresh builds).
    pub build_secs: f64,
    /// Streaming-append wall seconds for the remaining ~20%.
    pub append_secs: f64,
    /// Rows written (one logical put per row per replica).
    pub puts: u64,
    /// Batched write round trips across machines (0 on the seed path).
    pub write_batches: u64,
}

impl BuildRow {
    /// Average rows shipped per batched round trip.
    pub fn rows_per_batch(&self) -> f64 {
        if self.write_batches == 0 {
            return 0.0;
        }
        self.puts as f64 / self.write_batches as f64
    }
}

/// Split a trace at a timestamp-group boundary near `frac` of its
/// length (appends may not start before the index's end of history).
pub fn split_for_ingest(events: &[Event], frac: f64) -> usize {
    let mut split = ((events.len() as f64) * frac) as usize;
    while split > 0 && split < events.len() && events[split].time <= events[split - 1].time {
        split += 1;
    }
    split.min(events.len())
}

/// Run one full build + append on a fresh cluster, returning the
/// handle's store for content checks.
fn run_once(
    cfg: TgiConfig,
    store_cfg: StoreConfig,
    build_events: &[Event],
    append_events: &[Event],
    c: usize,
) -> (f64, f64, Arc<SimStore>) {
    let store = Arc::new(SimStore::new(store_cfg));
    let t0 = std::time::Instant::now();
    let mut tgi = Tgi::try_build_on_c(cfg, store.clone(), build_events, c).expect("healthy build");
    let build_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    tgi.try_append_events(append_events)
        .expect("healthy append");
    let append_secs = t1.elapsed().as_secs_f64();
    (build_secs, append_secs, store)
}

/// Measure one variant: median-of-three timings over fresh clusters,
/// store stats bracketed over the last run, and that run's store
/// returned for the equality assertion.
fn measure_variant(
    cfg: TgiConfig,
    store_cfg: StoreConfig,
    build_events: &[Event],
    append_events: &[Event],
    c: usize,
    seed_path: bool,
) -> (BuildRow, Arc<SimStore>) {
    let cfg = if seed_path {
        cfg.with_write_batch_rows(0)
    } else {
        cfg
    };
    let mut builds = [0.0f64; 3];
    let mut appends = [0.0f64; 3];
    let mut last_store = None;
    for i in 0..3 {
        let (b, a, store) = run_once(cfg, store_cfg, build_events, append_events, c);
        builds[i] = b;
        appends[i] = a;
        last_store = Some(store);
    }
    let store = last_store.expect("three runs happened");
    let stats = store.stats_snapshot();
    let row = BuildRow {
        clients: c,
        seed_path,
        build_secs: median3(builds),
        append_secs: median3(appends),
        puts: stats.iter().map(|m| m.puts).sum(),
        write_batches: stats.iter().map(|m| m.put_batches).sum(),
    };
    (row, store)
}

/// The build/ingest experiment over dataset 1, printed as TSV and
/// returned for JSON emission: the seed reference row first, then the
/// batched clients sweep.
pub fn build_ingest() -> Vec<BuildRow> {
    banner(
        "BuildIngest",
        "batched parallel TGI construction + streaming append vs seed sequential",
        "m=4 r=1 ps=500 l=500, 80/20 build/append, c from HGS_CLIENTS (default 1,2,4)",
    );
    let events = dataset1();
    let split = split_for_ingest(&events, 0.8);
    let (build_events, append_events) = events.split_at(split);
    let cfg = paper_default_cfg();
    let store_cfg = StoreConfig::new(4, 1);

    header(&[
        "path",
        "c",
        "build_s",
        "append_s",
        "puts",
        "write_batches",
        "rows_per_batch",
    ]);
    let mut rows = Vec::new();
    let mut push = |row: BuildRow| {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.1}",
            if row.seed_path { "seed" } else { "batched" },
            row.clients,
            secs(row.build_secs),
            secs(row.append_secs),
            row.puts,
            row.write_batches,
            row.rows_per_batch(),
        );
        rows.push(row);
    };

    let (seed_row, seed_store) =
        measure_variant(cfg, store_cfg, build_events, append_events, 1, true);
    let reference = seed_store.content_rows();
    push(seed_row);
    for c in clients_sweep() {
        let (row, store) = measure_variant(cfg, store_cfg, build_events, append_events, c, false);
        assert_eq!(
            store.content_rows(),
            reference,
            "batched build+ingest (c={c}) must be byte-identical to the seed sequential store"
        );
        assert!(
            row.write_batches > 0 && row.write_batches < row.puts,
            "batched path (c={c}) must group writes: {} batches for {} puts",
            row.write_batches,
            row.puts
        );
        push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn split_snaps_to_timestamp_boundary() {
        let ev = WikiGrowth::sized(2_000).generate();
        let split = split_for_ingest(&ev, 0.8);
        assert!(split > 0 && split <= ev.len());
        if split < ev.len() {
            assert!(
                ev[split].time > ev[split - 1].time,
                "split must not divide a timestamp group"
            );
        }
    }

    /// Small-scale end-to-end: batched variants byte-match the seed
    /// store and issue far fewer write round trips than rows.
    #[test]
    fn batched_variants_match_seed_and_group_writes() {
        let events = WikiGrowth::sized(4_000).generate();
        let split = split_for_ingest(&events, 0.8);
        let (build_events, append_events) = events.split_at(split);
        let cfg = paper_default_cfg();
        let store_cfg = StoreConfig::new(4, 1);
        let (seed_row, seed_store) =
            measure_variant(cfg, store_cfg, build_events, append_events, 1, true);
        assert_eq!(seed_row.write_batches, 0, "seed path writes row-at-a-time");
        let reference = seed_store.content_rows();
        for c in [1usize, 2] {
            let (row, store) =
                measure_variant(cfg, store_cfg, build_events, append_events, c, false);
            assert_eq!(store.content_rows(), reference, "c={c}");
            assert_eq!(row.puts, seed_row.puts, "same rows, same put count");
            assert!(
                row.write_batches * 10 <= row.puts,
                "c={c}: {} batches for {} puts",
                row.write_batches,
                row.puts
            );
        }
    }
}

//! Table 1: access costs and storage across the index spectrum —
//! the analytic formulas evaluated on a measured workload profile,
//! next to *measured* store costs from real builds of every index.

use crate::harness::*;
use hgs_baselines::{
    CopyIndex, CopyLogIndex, DeltaGraphIndex, HistoricalIndex, LogIndex, NodeCentricIndex,
};
use hgs_core::costs::{access_cost, storage_size, CostProfile, IndexKind, QueryKind};
use hgs_core::TgiConfig;
use hgs_datagen::WikiGrowth;
use hgs_delta::{Delta, TimeRange};
use hgs_store::{SimStore, StoreConfig};

/// Table 1, part 1: the paper's closed forms instantiated with a
/// concrete workload profile; part 2: measured requests/bytes on real
/// builds of all six indexes over the same trace.
pub fn table1() {
    banner(
        "Table 1",
        "access costs for retrieval primitives across indexes",
        "analytic + measured",
    );

    // -- analytic ------------------------------------------------------
    let events = WikiGrowth::sized(10_000).generate();
    let end_state = Delta::snapshot_by_replay(&events, u64::MAX);
    let s = end_state.cardinality() as f64;
    let profile = CostProfile {
        g: events.len() as f64,
        s,
        e: 500.0,
        h: (10_000f64 / 500.0).log2().ceil(),
        v: 100.0,
        r: 20.0,
        p: (s / 500.0).ceil(),
        c: 120.0,
    };
    println!(
        "# profile: |G|={} |S|={} |E|={} h={} |V|={} |R|={} p={} |C|={}",
        profile.g, profile.s, profile.e, profile.h, profile.v, profile.r, profile.p, profile.c
    );
    println!("# analytic: cells are (sum of delta cardinalities, number of deltas)");
    let mut head = vec!["index".to_owned(), "storage".to_owned()];
    head.extend(QueryKind::ALL.iter().map(|q| q.name().to_owned()));
    println!("{}", head.join("\t"));
    for idx in IndexKind::ALL {
        let mut row = vec![
            idx.name().to_owned(),
            format!("{:.2e}", storage_size(idx, &profile)),
        ];
        for q in QueryKind::ALL {
            let (sz, n) = access_cost(idx, q, &profile);
            row.push(format!("({sz:.2e},{n:.0})"));
        }
        println!("{}", row.join("\t"));
    }

    // -- measured ------------------------------------------------------
    println!(
        "\n# measured on a {}-event trace (requests, KB moved per query; storage MB)",
        events.len()
    );
    let end = events.last().unwrap().time;
    let t = end / 2;
    let range = TimeRange::new(end / 4, (3 * end) / 4);
    let probe = sample_nodes(&events, 1, 50)[0];

    let log = LogIndex::build(StoreConfig::new(2, 1), &events, 500);
    let copy = CopyIndex::build(StoreConfig::new(2, 1), &events);
    let copylog = CopyLogIndex::build(StoreConfig::new(2, 1), &events, 500);
    let nc = NodeCentricIndex::build(StoreConfig::new(2, 1), &events);
    let dg = DeltaGraphIndex::build(StoreConfig::new(2, 1), &events, 500, 2);
    let tgi = build_tgi(
        TgiConfig {
            events_per_timespan: 5_000,
            ..TgiConfig::default()
        },
        StoreConfig::new(2, 1),
        &events,
    );

    let indexes: Vec<&dyn HistoricalIndex> = vec![&log, &copy, &copylog, &nc, &dg, &tgi];
    header(&[
        "index",
        "storage_mb",
        "snapshot(req,KB)",
        "vertex(req,KB)",
        "versions(req,KB)",
        "1hop(req,KB)",
    ]);
    for idx in indexes {
        let cell = |f: &dyn Fn()| -> String {
            let before = idx.store().stats_snapshot();
            f();
            let d = SimStore::stats_since(&idx.store().stats_snapshot(), &before);
            let req: u64 = d.iter().map(|m| m.gets + m.scans).sum();
            let kb: f64 = d.iter().map(|m| m.bytes_read).sum::<u64>() as f64 / 1e3;
            format!("({req},{kb:.0})")
        };
        let snapshot = cell(&|| {
            let _ = idx.snapshot(t);
        });
        let vertex = cell(&|| {
            let _ = idx.node_at(probe, t);
        });
        let versions = cell(&|| {
            let _ = idx.node_versions(probe, range);
        });
        let onehop = cell(&|| {
            let _ = idx.one_hop(probe, t);
        });
        println!(
            "{}\t{:.2}\t{}\t{}\t{}\t{}",
            idx.name(),
            idx.storage_bytes() as f64 / 1e6,
            snapshot,
            vertex,
            versions,
            onehop
        );
    }
}

//! Serving benchmark: pinned-read latency (p50/p99) while a writer
//! ingests, vs the quiesced read-only baseline, emitted as JSON
//! (`BENCH_serve.json`) so CI and later PRs can track the cost of
//! snapshot-isolated reads under live appends.
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_serve -- BENCH_serve.json
//! ```

use hgs_bench::experiments::serve;
use hgs_bench::experiments::serve::APPEND_BATCHES;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let rows = serve::serve();
    let mut json = format!(
        "{{\n  \"dataset\": \"WikiGrowth\",\n  \"append_batches\": {APPEND_BATCHES},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"clients\": {}, \"ops\": {}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"reads_per_sec\": {:.0}, \
             \"watermark_lo\": {}, \"watermark_hi\": {}, \"epochs_verified\": {}}}{}\n",
            r.phase,
            r.clients,
            r.ops,
            r.p50_us,
            r.p99_us,
            r.reads_per_sec,
            r.watermark_lo,
            r.watermark_hi,
            r.epochs_verified,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

//! Standalone harness for the paper's fig15a experiment.
fn main() {
    hgs_bench::experiments::fig15a();
}

//! Standalone harness for the paper's fig15b experiment.
fn main() {
    hgs_bench::experiments::fig15b();
}

//! Chaos benchmark: availability, latency and retry cost under the
//! canonical seeded fault schedule, plus the deterministic repair
//! scenario, emitted as JSON (`BENCH_chaos.json`) so CI and later PRs
//! can track what the fault/retry/repair layer costs (plan_zero vs
//! baseline) and what it buys (chaos-phase availability, byte-identical
//! repair).
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_chaos -- BENCH_chaos.json
//! ```

use hgs_bench::experiments::chaos;
use hgs_bench::experiments::chaos::CHAOS_SEED;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let (rows, repair) = chaos::chaos();
    let mut json =
        format!("{{\n  \"dataset\": \"WikiGrowth\",\n  \"seed\": {CHAOS_SEED},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"clients\": {}, \"ops\": {}, \"ok\": {}, \
             \"availability\": {:.4}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"model_secs\": {:.6}, \"retries\": {}, \"breaker_opens\": {}}}{}\n",
            r.phase,
            r.clients,
            r.ops,
            r.ok,
            r.availability,
            r.p50_us,
            r.p99_us,
            r.model_secs,
            r.retries,
            r.breaker_opens,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"repair\": {{\"degraded_rows\": {}, \"repaired\": {}, \
         \"still_degraded\": {}, \"byte_identical\": {}}}\n}}\n",
        repair.degraded_rows, repair.repaired, repair.still_degraded, repair.byte_identical
    ));
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

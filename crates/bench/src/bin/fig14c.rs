//! Standalone harness for the paper's fig14c experiment.
fn main() {
    hgs_bench::experiments::fig14c();
}

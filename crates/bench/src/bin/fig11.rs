//! Standalone harness for the paper's fig11 experiment.
fn main() {
    hgs_bench::experiments::fig11();
}

//! Standalone harness for the paper's fig13c experiment.
fn main() {
    hgs_bench::experiments::fig13c();
}

//! Standalone harness for the paper's fig16 experiment.
fn main() {
    hgs_bench::experiments::fig16();
}

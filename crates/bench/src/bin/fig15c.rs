//! Standalone harness for the paper's fig15c experiment.
fn main() {
    hgs_bench::experiments::fig15c();
}

//! Run every table/figure harness in sequence (set HGS_SCALE to trade
//! fidelity for speed, e.g. HGS_SCALE=0.2).
fn main() {
    use hgs_bench::experiments as e;
    let t0 = std::time::Instant::now();
    e::table1();
    e::fig11();
    e::fig12();
    e::fig13a();
    e::fig13b();
    e::fig13c();
    e::fig14a();
    e::fig14b();
    e::fig14c();
    e::fig15a();
    e::fig15b();
    e::fig15c();
    e::fig16();
    e::fig17();
    e::ablation_arity();
    e::ablation_timespan();
    e::ablation_horizontal();
    e::multipoint();
    e::read_cache();
    e::build_ingest();
    e::decode();
    e::labels();
    e::serve();
    e::chaos();
    eprintln!("# run_all finished in {:.1}s", t0.elapsed().as_secs_f64());
}

//! Build/ingest benchmark: batched parallel construction vs the seed
//! row-at-a-time sequential write path, emitted as JSON
//! (`BENCH_build.json`) so CI and later PRs can track ingest speed
//! and write-batching efficiency.
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_build -- BENCH_build.json
//! ```

use hgs_bench::experiments::build_ingest;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_build.json".to_string());
    let rows = build_ingest::build_ingest();
    let mut json = String::from("{\n  \"dataset\": \"WikiGrowth\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"clients\": {}, \"build_secs\": {:.5}, \
             \"append_secs\": {:.5}, \"puts\": {}, \"write_batches\": {}, \
             \"rows_per_batch\": {:.1}}}{}\n",
            if r.seed_path { "seed" } else { "batched" },
            r.clients,
            r.build_secs,
            r.append_secs,
            r.puts,
            r.write_batches,
            r.rows_per_batch(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

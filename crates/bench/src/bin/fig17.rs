//! Standalone harness for the paper's fig17 experiment.
fn main() {
    hgs_bench::experiments::fig17();
}

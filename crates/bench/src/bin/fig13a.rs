//! Standalone harness for the paper's fig13a experiment.
fn main() {
    hgs_bench::experiments::fig13a();
}

//! Read-cache benchmark: cold vs warm single-point retrieval over
//! Zipf-repeated working sets, emitted as JSON (`BENCH_cache.json`)
//! so CI and later PRs can track the cache's warm speedup.
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_cache -- BENCH_cache.json
//! ```

use hgs_bench::experiments::read_cache;
use hgs_bench::experiments::read_cache::CACHE_BUDGET_BYTES;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cache.json".to_string());
    let rows = read_cache::read_cache();
    let mut json = format!(
        "{{\n  \"dataset\": \"WikiGrowth\",\n  \"budget_bytes\": {CACHE_BUDGET_BYTES},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"clients\": {}, \"cold_secs\": {:.5}, \
             \"warm_secs\": {:.5}, \"speedup\": {:.2}, \"hits\": {}, \"misses\": {}, \
             \"state_hits\": {}, \"state_misses\": {}, \"cache_bytes\": {}}}{}\n",
            r.workload,
            r.clients,
            r.cold_secs,
            r.warm_secs,
            r.speedup(),
            r.hits,
            r.misses,
            r.state_hits,
            r.state_misses,
            r.cache_bytes,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

//! Standalone harness for the paper's fig14a experiment.
fn main() {
    hgs_bench::experiments::fig14a();
}

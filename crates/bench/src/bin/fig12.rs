//! Standalone harness for the paper's fig12 experiment.
fn main() {
    hgs_bench::experiments::fig12();
}

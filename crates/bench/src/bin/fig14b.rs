//! Standalone harness for the paper's fig14b experiment.
fn main() {
    hgs_bench::experiments::fig14b();
}

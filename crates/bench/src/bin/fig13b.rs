//! Standalone harness for the paper's fig13b experiment.
fn main() {
    hgs_bench::experiments::fig13b();
}

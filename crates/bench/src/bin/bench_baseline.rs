//! Smoke benchmark seeding the repo's perf trajectory
//! (`BENCH_baseline.json`).
//!
//! Builds a TGI over a small `WikiGrowth` trace through the shared
//! harness and times the operations every later optimization PR will
//! be judged against: index construction, single- and multi-client
//! snapshot retrieval, static node fetch, and node-history retrieval.
//! Results are written as JSON to the path given as the first CLI
//! argument (default `BENCH_baseline.json` in the current directory).
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_baseline -- BENCH_baseline.json
//! ```

use std::time::Instant;

use hgs_bench::{build_tgi, growth_times, paper_default_cfg, sample_nodes, timed};
use hgs_datagen::WikiGrowth;
use hgs_delta::codec::decoded_bytes;
use hgs_delta::TimeRange;
use hgs_store::StoreConfig;

const EVENTS: usize = 20_000;
const REPEATS: usize = 5;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Median wall-clock seconds of `f` over [`REPEATS`] runs.
fn time_median<R>(mut f: impl FnMut() -> R) -> f64 {
    let samples = (0..REPEATS)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(samples)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());

    let events = WikiGrowth::sized(EVENTS).generate();
    let end = events.last().unwrap().time;

    let t0 = Instant::now();
    let tgi = build_tgi(paper_default_cfg(), StoreConfig::new(4, 1), &events);
    let build_secs = t0.elapsed().as_secs_f64();

    let snapshot_c1 = time_median(|| tgi.snapshot_c(end / 2, 1));
    let snapshot_c4 = time_median(|| tgi.snapshot_c(end / 2, 4));
    let (_, report) = timed(&tgi, 4, || tgi.snapshot_c(end / 2, 4));

    let nodes = sample_nodes(&events, 8, 4);
    let node_at = time_median(|| {
        for &id in &nodes {
            std::hint::black_box(tgi.node_at(id, end / 2));
        }
    });
    let range = TimeRange::new(end / 4, (3 * end) / 4);
    let node_history = time_median(|| {
        for &id in &nodes {
            std::hint::black_box(tgi.node_history(id, range));
        }
    });

    // Decode-path rows: cold wall time plus codec bytes materialized
    // (the cache is still off, so every query decodes stored rows; see
    // bench_decode for the row-wise vs columnar comparison).
    let decode_cold = time_median(|| tgi.snapshot_c(end / 2, 1));
    let node_at_cold = time_median(|| {
        for &id in &nodes {
            std::hint::black_box(tgi.node_at(id, end / 2));
        }
    });
    let b0 = decoded_bytes();
    std::hint::black_box(tgi.snapshot_c(end / 2, 1));
    let snapshot_bytes = decoded_bytes() - b0;
    let b0 = decoded_bytes();
    for &id in &nodes {
        std::hint::black_box(tgi.node_at(id, end / 2));
    }
    let node_at_bytes = (decoded_bytes() - b0) / nodes.len() as u64;
    // Naive multipoint (one independent cache-bypassing snapshot per
    // time) vs the shared-path planner behind `Tgi::snapshots`. CI
    // gates on shared < naive. `build_tgi` disables the read cache so
    // the raw numbers above stay cache-free; the planner's steady
    // state (what a serving system pays) needs it back on.
    tgi.set_read_cache_budget(hgs_core::DEFAULT_READ_CACHE_BYTES);
    let times = growth_times(&events, 4);
    let multipoint = time_median(|| {
        times
            .iter()
            .map(|&t| tgi.snapshot_uncached(t))
            .collect::<Vec<_>>()
    });
    let multipoint_shared = time_median(|| tgi.snapshots(&times));

    let json = format!(
        "{{\n  \
         \"dataset\": \"WikiGrowth\",\n  \
         \"events\": {EVENTS},\n  \
         \"store\": {{\"machines\": 4, \"replication\": 1}},\n  \
         \"build_secs\": {build_secs:.4},\n  \
         \"storage_bytes\": {storage},\n  \
         \"snapshot_c1_secs\": {snapshot_c1:.5},\n  \
         \"snapshot_c4_secs\": {snapshot_c4:.5},\n  \
         \"snapshot_modeled_secs\": {modeled:.5},\n  \
         \"snapshot_requests\": {requests},\n  \
         \"node_at_x8_secs\": {node_at:.5},\n  \
         \"node_history_x8_secs\": {node_history:.5},\n  \
         \"decode_cold_secs\": {decode_cold:.5},\n  \
         \"node_at_cold_secs\": {node_at_cold:.5},\n  \
         \"snapshot_bytes_decoded\": {snapshot_bytes},\n  \
         \"node_at_bytes_decoded_per_query\": {node_at_bytes},\n  \
         \"multipoint_x4_secs\": {multipoint:.5},\n  \
         \"multipoint_shared_secs\": {multipoint_shared:.5}\n\
         }}\n",
        storage = tgi.storage_bytes(),
        modeled = report.modeled_secs,
        requests = report.requests(),
    );

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

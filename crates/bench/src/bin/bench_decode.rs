//! Decode-path benchmark: bytes materialized and wall time per query,
//! row-wise vs columnar storage layout, emitted as JSON
//! (`BENCH_decode.json`) so CI and later PRs can track the columnar
//! layout's decode savings.
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_decode -- BENCH_decode.json
//! ```

use hgs_bench::experiments::decode;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_decode.json".to_string());
    let rows = decode::decode();
    let mut json = String::from("{\n  \"dataset\": \"WikiGrowth\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"layout\": \"{}\", \"workload\": \"{}\", \"secs\": {:.5}, \
             \"bytes_decoded\": {}, \"queries\": {}, \"bytes_per_query\": {}}}{}\n",
            r.layout,
            r.workload,
            r.secs,
            r.bytes_decoded,
            r.queries,
            r.bytes_per_query(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

//! Multipoint-retrieval benchmark: shared-path planner vs naive loop,
//! emitted as JSON (`BENCH_multipoint.json`) so CI and later PRs can
//! track the planner's speedup.
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_multipoint -- BENCH_multipoint.json
//! ```

use hgs_bench::experiments::multipoint;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_multipoint.json".to_string());
    let rows = multipoint();
    let mut json = String::from("{\n  \"dataset\": \"WikiGrowth\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"k\": {}, \"clients\": {}, \"naive_secs\": {:.5}, \
             \"shared_cold_secs\": {:.5}, \"shared_secs\": {:.5}, \
             \"speedup\": {:.2}, \"naive_requests\": {}, \"shared_requests\": {}, \
             \"shared_round_trips\": {}, \"planned_shared_units\": {}, \
             \"planned_naive_units\": {}}}{}\n",
            r.k,
            r.clients,
            r.naive_secs,
            r.shared_cold_secs,
            r.shared_secs,
            r.naive_secs / r.shared_secs.max(1e-9),
            r.naive_requests,
            r.shared_requests,
            r.shared_round_trips,
            r.planned_shared_units,
            r.planned_naive_units,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

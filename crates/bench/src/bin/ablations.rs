//! Standalone harness for the design-choice ablations (arity,
//! timespan length, horizontal partitions).
fn main() {
    hgs_bench::experiments::ablation_arity();
    hgs_bench::experiments::ablation_timespan();
    hgs_bench::experiments::ablation_horizontal();
}

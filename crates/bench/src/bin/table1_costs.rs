//! Standalone harness for the paper's Table 1.
fn main() {
    hgs_bench::experiments::table1();
}

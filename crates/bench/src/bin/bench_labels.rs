//! Secondary-index benchmark: label/attribute predicate queries from
//! the change-point rows vs snapshot materialization, emitted as JSON
//! (`BENCH_labels.json`) so CI and later PRs can track the index's
//! decode and latency savings.
//!
//! ```text
//! cargo run --release -p hgs-bench --bin bench_labels -- BENCH_labels.json
//! ```

use hgs_bench::experiments::labels;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_labels.json".to_string());
    let rows = labels::labels();
    let mut json = String::from("{\n  \"dataset\": \"SkewedLabels\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"workload\": \"{}\", \"secs\": {:.5}, \
             \"bytes_decoded\": {}, \"queries\": {}}}{}\n",
            r.mode,
            r.workload,
            r.secs,
            r.bytes_decoded,
            r.queries,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
}

//! # HGS — Historical Graph Store
//!
//! Umbrella crate re-exporting the full HGS stack, a Rust reproduction
//! of *"Storing and Analyzing Historical Graph Data at Scale"*
//! (Khurana & Deshpande, EDBT 2016).
//!
//! * [`delta`] — temporal graph model and Δ algebra.
//! * [`store`] — simulated distributed key-value store (Cassandra
//!   substitute).
//! * [`graph`] — static graph snapshots and algorithms.
//! * [`partition`] — random and locality-aware graph partitioning.
//! * [`tgi`] — the Temporal Graph Index (the paper's contribution).
//! * [`baselines`] — Log / Copy / Copy+Log / vertex-centric /
//!   DeltaGraph baseline indexes.
//! * [`taf`] — the Temporal Graph Analysis Framework.
//! * [`datagen`] — synthetic historical-graph workload generators.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use hgs_baselines as baselines;
pub use hgs_core as tgi;
pub use hgs_datagen as datagen;
pub use hgs_delta as delta;
pub use hgs_graph as graph;
pub use hgs_partition as partition;
pub use hgs_store as store;
pub use hgs_taf as taf;

//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Supports the macro/builder surface this workspace's benches use
//! (`criterion_group!` / `criterion_main!` / `bench_function` /
//! `iter` / `iter_batched`) and actually measures: each benchmark is
//! warmed up, then timed over `sample_size` samples, reporting the
//! median per-iteration wall-clock time as plain text. No statistics
//! beyond that — swap for the real crate when a registry is
//! available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the
/// shim times one input per sample regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark runner and its configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            test_mode: args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Parse CLI arguments (no-op in the shim; `--test` is detected
    /// in `default()`).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            measurement_time: if self.test_mode {
                Duration::from_millis(1)
            } else {
                self.measurement_time
            },
            warm_up_time: if self.test_mode {
                Duration::ZERO
            } else {
                self.warm_up_time
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Times the routine handed to [`Criterion::bench_function`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, also sizing how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Group benchmark functions, optionally with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("shim/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn runs_quickly_in_test_mode() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(2),
            warm_up_time: Duration::from_millis(1),
            test_mode: true,
        };
        quick(&mut c);
    }
}

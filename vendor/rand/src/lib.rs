//! Offline stand-in for [`rand`](https://docs.rs/rand) 0.9.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 —
//! *not* the same stream as the real crate, but deterministic per
//! seed, which is all the workspace's generators require) plus the
//! `Rng` / `SeedableRng` / `SliceRandom` surface actually used:
//! `random::<f64>()`, `random_range(..)`, and `shuffle`.

/// Commonly used traits, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng, SliceRandom};
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator
    /// (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Sample one value from the type's standard distribution.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut StdRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($ty:ty),+) => {
        $(impl UniformInt for $ty {
            fn sample_range(rng: &mut StdRng, lo: $ty, hi: $ty) -> $ty {
                assert!(lo < hi, "empty random_range");
                let span = (hi - lo) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of the plain variant is irrelevant for
                // workload generation but rejection keeps it exact.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return lo + (v % span) as $ty;
                    }
                }
            }
        })+
    };
}

uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($ty:ty : $uty:ty),+) => {
        $(impl UniformInt for $ty {
            fn sample_range(rng: &mut StdRng, lo: $ty, hi: $ty) -> $ty {
                assert!(lo < hi, "empty random_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let off = <u64 as UniformInt>::sample_range(rng, 0, span);
                ((lo as i64).wrapping_add(off as i64)) as $ty
            }
        })+
    };
}

uniform_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// The generator interface (the `random`/`random_range` subset).
pub trait Rng {
    /// Access the underlying concrete generator.
    fn as_std(&mut self) -> &mut StdRng;

    /// Sample from the type's standard distribution
    /// (`random::<f64>()` is uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self.as_std())
    }

    /// Sample uniformly from a half-open range.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self.as_std(), range.start, range.end)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl Rng for StdRng {
    fn as_std(&mut self) -> &mut StdRng {
        self
    }
}

/// In-place slice shuffling (the `shuffle` subset of `SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

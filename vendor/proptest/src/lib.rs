//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Generation-only property testing: strategies produce random values
//! and the [`proptest!`] macro runs each test body over `cases`
//! generated inputs, but failing cases are **not shrunk** — the
//! failing input is printed as generated. The supported surface is
//! exactly what this workspace's `prop_*` suites use:
//!
//! * integer / float range strategies (`0u64..24`, `0.0f32..4.0`);
//! * `&str` regex-subset strategies (`"[a-c]{1,3}"`);
//! * [`any`]`::<bool / u8 / u32 / u64 / i64 / usize>()`;
//! * tuples of strategies up to arity 6;
//! * [`Just`], [`Strategy::prop_map`], [`Strategy::prop_flat_map`],
//!   [`Strategy::boxed`];
//! * [`prop_oneof!`] with optional `weight =>` prefixes;
//! * [`collection::vec`] and [`collection::hash_set`];
//! * [`ProptestConfig`] (`cases`, `with_cases`, struct update); the
//!   `PROPTEST_CASES` env var sets the *default* case count (explicit
//!   per-suite configs win), as in the real crate;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] and
//!   `return Ok(())` early exits.
//!
//! Runs are deterministic: the RNG seed is derived from the test
//! name, so a failure reproduces by re-running the same test.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::ops::Range;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derive the per-test RNG from the test's name (deterministic runs).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------------
// Config & errors
// ---------------------------------------------------------------------------

/// Runner configuration (the `cases` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Unused; present so struct-update syntax against `default()`
    /// matches the real crate.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    /// Like the real crate, the default reads `PROPTEST_CASES` from
    /// the environment; an explicit `cases` (via [`with_cases`] or
    /// struct update) always wins over the env var.
    ///
    /// [`with_cases`]: ProptestConfig::with_cases
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases per test (not
    /// overridable by `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing `pred` (retries, then panics).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the held value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        })+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $ty
            }
        })+
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Rounding in `start + u*(end-start)` can land exactly on
        // `end`; clamp to keep the half-open contract.
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        // The f64 -> f32 cast can round up to exactly `end`; clamp to
        // keep the half-open contract.
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Types with a canonical "arbitrary" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy generating unconstrained values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)            ;
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String strategies (regex subset)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    Class(Vec<(char, char)>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
                i += 1; // skip ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pat:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                assert!(
                    !"(){}*+?|.^$".contains(c),
                    "unsupported regex construct {c:?} in pattern {pat:?} \
                     (the offline proptest shim supports classes, literals and {{m,n}})"
                );
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let size = (*hi as u64) - (*lo as u64) + 1;
                            if pick < size {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Strategies for standard collections, mirroring
/// `proptest::collection`.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is uniform in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size in `len`.
    pub struct HashSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A hash set with size uniform in `len` (best-effort: duplicate
    /// generation may yield fewer elements than the minimum after a
    /// bounded number of retries).
    pub fn hash_set<S>(element: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, len }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.len.generate(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n && attempts < 10 * (n + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with size in `len`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// An ordered set with size uniform in `len` (best-effort, as for
    /// [`hash_set`]).
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> std::collections::BTreeSet<S::Value> {
            let n = self.len.generate(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < 10 * (n + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// Weighted choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// A union over weighted arms. Panics if `arms` is empty or all
    /// weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted or unweighted choice among strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Fail the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define `#[test]` functions whose arguments are drawn from
/// strategies. Each test runs `cases` times with fresh inputs; a
/// failing case panics with the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run() {
                    panic!(
                        "proptest case {}/{} of `{}` failed:\n{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn string_pattern(s in "[a-c]{1,3}") {
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_tuple(v in prop::collection::vec((0u32..10, any::<bool>()), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for (n, _) in v {
                prop_assert!(n < 10);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            2 => (0u8..4).prop_map(|x| x as u32),
            1 => Just(99u32),
        ]) {
            prop_assert!(v < 4 || v == 99);
        }

        #[test]
        fn early_return_ok(x in 0u8..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = crate::test_rng("name");
        let mut b = crate::test_rng("name");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

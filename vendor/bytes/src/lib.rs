//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements only what this workspace uses: a cheaply cloneable
//! immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] traits for the little-
//! and big-endian accessors the codecs call. Swap for the real crate
//! when building against a registry.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

// Like the real crate, comparisons and hashing are by *content*, so a
// `slice()` view equals an owned buffer with the same bytes.
impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wrap a static byte slice (copies here; the real crate borrows).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == &other[..]
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

macro_rules! put_methods {
    ($($name:ident: $ty:ty => $conv:ident),+ $(,)?) => {
        $(
            /// Append the value in the byte order named by the method.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.$conv());
            }
        )+
    };
}

/// Write access to a byte buffer (the subset used by the codecs).
pub trait BufMut {
    /// Append a slice of bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append another buffer's remaining bytes.
    fn put<B: AsRef<[u8]>>(&mut self, other: B)
    where
        Self: Sized,
    {
        self.put_slice(other.as_ref());
    }

    put_methods! {
        put_u16: u16 => to_be_bytes,
        put_u16_le: u16 => to_le_bytes,
        put_u32: u32 => to_be_bytes,
        put_u32_le: u32 => to_le_bytes,
        put_u64: u64 => to_be_bytes,
        put_u64_le: u64 => to_le_bytes,
        put_i64: i64 => to_be_bytes,
        put_i64_le: i64 => to_le_bytes,
        put_f32: f32 => to_be_bytes,
        put_f32_le: f32 => to_le_bytes,
        put_f64: f64 => to_be_bytes,
        put_f64_le: f64 => to_le_bytes,
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

macro_rules! get_methods {
    ($($name:ident: $ty:ty => $conv:ident),+ $(,)?) => {
        $(
            /// Read the value in the byte order named by the method,
            /// advancing the cursor. Panics if underfull.
            fn $name(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(&self.chunk()[..N]);
                self.advance(N);
                <$ty>::$conv(raw)
            }
        )+
    };
}

/// Read access to a byte buffer (the subset used by the codecs).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read a single byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Copy bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    get_methods! {
        get_u16: u16 => from_be_bytes,
        get_u16_le: u16 => from_le_bytes,
        get_u32: u32 => from_be_bytes,
        get_u32_le: u32 => from_le_bytes,
        get_u64: u64 => from_be_bytes,
        get_u64_le: u64 => from_le_bytes,
        get_i64: i64 => from_be_bytes,
        get_i64_le: i64 => from_le_bytes,
        get_f32: f32 => from_be_bytes,
        get_f32_le: f32 => from_le_bytes,
        get_f64: f64 => from_be_bytes,
        get_f64_le: f64 => from_le_bytes,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_f64_le(1.5);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r, b"xy");
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b.slice(1..3)[..], &[2, 3]);
        assert_eq!(b.len(), 4);
    }
}

//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API (`read()` / `write()` / `lock()` return guards directly).
//! Poisoned locks propagate the inner panic's effect by panicking at
//! the acquisition site, which matches how this workspace uses them.

use std::sync;

/// A reader-writer lock with parking_lot's panic-free signatures.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free signatures.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}

//! Workspace-level integration tests: the full HGS pipeline
//! (generators -> TGI -> TAF -> graph algorithms) and the §4.2
//! generalization claim (TGI configurations converge to the baseline
//! indexes).

use std::sync::Arc;

use hgs::baselines::{CopyLogIndex, HistoricalIndex, LogIndex, NodeCentricIndex};
use hgs::datagen::{CommunityGraph, LabeledChurn, WikiGrowth};
use hgs::delta::{Delta, StorageLayout, TimeRange};
use hgs::graph::algo;
use hgs::store::StoreConfig;
use hgs::taf::TgiHandler;
use hgs::tgi::{Tgi, TgiConfig};

#[test]
fn all_indexes_agree_on_all_primitives() {
    // Every index class must answer identically; this is the repo's
    // strongest cross-validation (six independent implementations).
    let events = WikiGrowth::sized(2_000).generate();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(
        TgiConfig {
            events_per_timespan: 900,
            eventlist_size: 100,
            partition_size: 50,
            ..TgiConfig::default()
        },
        StoreConfig::new(2, 1),
        &events,
    );
    let log = LogIndex::build(StoreConfig::new(2, 1), &events, 128);
    let copylog = CopyLogIndex::build(StoreConfig::new(2, 1), &events, 200);
    let nc = NodeCentricIndex::build(StoreConfig::new(2, 1), &events);
    let dg = hgs::baselines::DeltaGraphIndex::build(StoreConfig::new(2, 1), &events, 150, 2);
    let copy = hgs::baselines::CopyIndex::build(StoreConfig::new(2, 1), &events);

    let indexes: Vec<&dyn HistoricalIndex> = vec![&tgi, &log, &copylog, &nc, &dg, &copy];
    for t in [0, end / 3, end / 2, end] {
        let want = Delta::snapshot_by_replay(&events, t);
        for idx in &indexes {
            assert_eq!(idx.snapshot(t), want, "{} snapshot at t={t}", idx.name());
        }
    }
    let range = TimeRange::new(end / 4, (3 * end) / 4);
    for nid in [0u64, 3, 17] {
        let reference = {
            let initial = Delta::snapshot_by_replay(&events, range.start).remove(nid);
            let evs: Vec<_> = events
                .iter()
                .filter(|e| {
                    let (a, b) = e.kind.touched();
                    (a == nid || b == Some(nid)) && e.time > range.start && e.time < range.end
                })
                .cloned()
                .collect();
            (initial, evs)
        };
        for idx in &indexes {
            assert_eq!(
                idx.node_versions(nid, range),
                reference,
                "{} versions of {nid}",
                idx.name()
            );
        }
    }
}

#[test]
fn tgi_converges_to_copy_log() {
    // §4.2: with a flat (height-1) tree, one horizontal partition and
    // monolithic deltas, TGI's snapshot access pattern is Copy+Log:
    // root + one derived + one eventlist per query.
    let events = WikiGrowth::sized(2_000).generate();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(TgiConfig::copy_log(200), StoreConfig::new(1, 1), &events);
    let before = tgi.store().stats_snapshot();
    let snap = tgi.snapshot_c(end / 2, 1);
    let diff = hgs::store::SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
    let requests: u64 = diff.iter().map(|m| m.gets + m.scans).sum();
    assert!(
        requests <= 3,
        "flat TGI must behave like Copy+Log, got {requests} requests"
    );
    assert_eq!(snap, Delta::snapshot_by_replay(&events, end / 2));
}

#[test]
fn full_pipeline_analytics_match_reference() {
    // Generator -> TGI -> TAF -> algorithms, checked against direct
    // computation on replayed snapshots.
    let events = CommunityGraph {
        nodes: 300,
        communities: 3,
        edge_events: 3_000,
        intra_prob: 0.85,
        switches: 60,
        seed: 11,
    }
    .generate();
    let end = events.last().unwrap().time;
    let tgi = Arc::new(Tgi::build(
        TgiConfig::default(),
        StoreConfig::new(2, 1),
        &events,
    ));
    let handler = TgiHandler::new(tgi, 3);
    let son = handler.son().timeslice(TimeRange::new(0, end + 1)).fetch();

    for t in [end / 3, end] {
        let reference = hgs::graph::Graph::from_delta(Delta::snapshot_by_replay(&events, t));
        let via_taf = son.graph_at(t);
        assert_eq!(
            via_taf.node_count(),
            reference.node_count(),
            "nodes at t={t}"
        );
        assert_eq!(
            via_taf.edge_count(),
            reference.edge_count(),
            "edges at t={t}"
        );
        let d1 = algo::density(&via_taf);
        let d2 = algo::density(&reference);
        assert!((d1 - d2).abs() < 1e-12, "density at t={t}");
        let c1 = algo::average_clustering(&via_taf);
        let c2 = algo::average_clustering(&reference);
        assert!((c1 - c2).abs() < 1e-9, "clustering at t={t}");
    }

    // Community comparison via operators matches a direct count.
    let son_a = son.select_attr("community", "A");
    let state = Delta::snapshot_by_replay(&events, end);
    let direct_a = state
        .iter()
        .filter(|n| n.attrs.get("community").and_then(|v| v.as_text()) == Some("A"))
        .count();
    assert_eq!(son_a.len(), direct_a);
}

#[test]
fn incremental_operator_equals_recompute_on_real_trace() {
    let events = LabeledChurn {
        nodes: 200,
        edge_events: 1_500,
        label_flips: 800,
        seed: 21,
    }
    .generate();
    let end = events.last().unwrap().time;
    let tgi = Arc::new(Tgi::build(
        TgiConfig::default(),
        StoreConfig::new(2, 1),
        &events,
    ));
    let handler = TgiHandler::new(tgi, 2);
    let sots = handler
        .sots(2)
        .timeslice(TimeRange::new(end / 2, end + 1))
        .roots(vec![1, 5, 9, 13])
        .fetch();

    let count = |d: &Delta| -> i64 {
        d.iter()
            .filter(|n| n.attrs.get("EntityType").and_then(|v| v.as_text()) == Some("Author"))
            .count() as i64
    };
    let temporal = sots.node_compute_temporal(count);
    let incremental = sots.node_compute_delta(count, |before, prev, e| match &e.kind {
        hgs::delta::EventKind::SetNodeAttr { id, key, value } if key == "EntityType" => {
            let was = before
                .node(*id)
                .and_then(|n| n.attrs.get("EntityType"))
                .and_then(|v| v.as_text())
                == Some("Author");
            prev + (value.as_text() == Some("Author")) as i64 - was as i64
        }
        hgs::delta::EventKind::RemoveNode { id } => {
            let was = before
                .node(*id)
                .and_then(|n| n.attrs.get("EntityType"))
                .and_then(|v| v.as_text())
                == Some("Author");
            prev - was as i64
        }
        _ => *prev,
    });
    assert_eq!(temporal, incremental);
}

#[test]
fn store_failure_injection_with_replication_keeps_queries_alive() {
    let events = WikiGrowth::sized(3_000).generate();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(TgiConfig::default(), StoreConfig::new(4, 2), &events);
    let want = Delta::snapshot_by_replay(&events, end);
    for failed in 0..4 {
        tgi.store().fail_machine(failed);
        assert_eq!(
            tgi.snapshot(end),
            want,
            "snapshot with machine {failed} down"
        );
        assert_eq!(
            tgi.node_at(0, end),
            want.node(0).cloned(),
            "node fetch with machine {failed} down"
        );
        tgi.store().heal_machine(failed);
    }
}

#[test]
fn compression_changes_bytes_not_answers() {
    let events = WikiGrowth::sized(3_000).generate();
    let end = events.last().unwrap().time;
    // Row-wise layout: columnar rows are already LZSS-compressed per
    // column, so store-level whole-value compression has nothing left
    // to squeeze there.
    let cfg = TgiConfig::default().with_layout(StorageLayout::RowWise);
    let plain = Tgi::build(cfg, StoreConfig::new(2, 1), &events);
    let packed = Tgi::build(cfg, StoreConfig::new(2, 1).with_compression(true), &events);
    assert!(packed.storage_bytes() < plain.storage_bytes());
    for t in [end / 2, end] {
        assert_eq!(plain.snapshot(t), packed.snapshot(t));
    }
}

#[test]
fn multipoint_snapshots_are_consistent() {
    let events = WikiGrowth::sized(2_500).generate();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(TgiConfig::default(), StoreConfig::new(2, 1), &events);
    let times: Vec<u64> = (1..=5).map(|i| end * i / 5).collect();
    let snaps = tgi.snapshots(&times);
    // Growth-only trace: node counts must be monotone.
    let counts: Vec<usize> = snaps.iter().map(|s| s.cardinality()).collect();
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    for (t, s) in times.iter().zip(&snaps) {
        assert_eq!(s, &Delta::snapshot_by_replay(&events, *t));
    }
}
